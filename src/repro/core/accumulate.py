"""The GraphBLAS write pipeline: accumulate, mask, replace.

Every GraphBLAS operation ends the same way (spec §2.3): the computed result
``T`` is merged into the output ``C`` under the accumulator, the mask, and
the replace flag:

1. **accumulate** — ``Z = accum(C, T)`` elementwise-union when an accumulator
   is given (positions present in only one operand pass through), else
   ``Z = T``;
2. **mask/replace** — positions where the effective mask is true receive
   ``Z``'s entry (or become empty if ``Z`` has none); positions where it is
   false keep ``C``'s old entry, unless ``replace`` is set, in which case
   they become empty.

Backends compute only ``T``; this module implements the merge once,
vectorized over sorted index arrays, and both the vector and matrix paths
share :func:`_merge_indexed` (matrices go through flat row-major keys).
This centralisation is what guarantees bit-identical write semantics across
the reference, CPU, and simulated-GPU backends.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..types import GrBType, promote
from .descriptor import DEFAULT, Descriptor
from .mask import check_mask_shape, flat_keys, matrix_mask_at, vector_mask_at
from .operators import BinaryOp

__all__ = ["merge_vector", "merge_matrix"]


def _note_result(container):
    """Tell the active backend a merged output exists device-side.

    Backend kernels compute results *on the device*; the frontend merge is
    part of the same write pipeline, so its output should not be treated as
    host-only data that must be re-uploaded on next use.  Real backends
    ignore the hint; the simulated GPU marks the container resident without
    charging PCIe traffic (transfer elision).
    """
    from ..backends.dispatch import current_backend
    from ..gpu import reuse

    if reuse.elision_enabled():
        current_backend().note_result(container)
    return container


def _trivial_merge(mask, accum, desc: Descriptor) -> bool:
    """True when the pipeline reduces to "output := T cast to C's domain".

    With no mask every position is writable (complementing a missing mask
    is all-true here, see :func:`~repro.core.mask.vector_mask_at`) and with
    no accumulator old entries never survive, so the merged result *is* T.
    Returning T itself preserves container identity — and therefore device
    residency — across the write pipeline, which is what lets iterative
    algorithms skip per-iteration H2D re-uploads.
    """
    from ..gpu import reuse

    del desc  # replace flag is irrelevant once the mask admits everything
    return mask is None and accum is None and reuse.elision_enabled()


def _accumulate(
    c_idx: np.ndarray,
    c_vals: np.ndarray,
    t_idx: np.ndarray,
    t_vals: np.ndarray,
    accum: Optional[BinaryOp],
    out_dtype: np.dtype,
) -> Tuple[np.ndarray, np.ndarray]:
    """Union-merge (C, T) under ``accum`` over sorted index arrays."""
    if accum is None:
        return t_idx, t_vals.astype(out_dtype, copy=False)
    union = np.union1d(c_idx, t_idx)
    out = np.empty(union.size, dtype=out_dtype)
    in_c = np.isin(union, c_idx, assume_unique=True)
    in_t = np.isin(union, t_idx, assume_unique=True)
    only_c = in_c & ~in_t
    only_t = in_t & ~in_c
    both = in_c & in_t
    if only_c.any():
        sel = np.searchsorted(c_idx, union[only_c])
        out[only_c] = c_vals[sel]
    if only_t.any():
        sel = np.searchsorted(t_idx, union[only_t])
        out[only_t] = t_vals[sel]
    if both.any():
        ci = np.searchsorted(c_idx, union[both])
        ti = np.searchsorted(t_idx, union[both])
        out[both] = accum(c_vals[ci], t_vals[ti])
    return union, out


def _merge_indexed(
    c_idx: np.ndarray,
    c_vals: np.ndarray,
    t_idx: np.ndarray,
    t_vals: np.ndarray,
    mask_at,
    accum: Optional[BinaryOp],
    replace: bool,
    out_dtype: np.dtype,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared core of the write pipeline over sorted index arrays.

    ``mask_at(positions) -> bool[len(positions)]`` evaluates the effective
    mask.  Returns the final sorted (indices, values).
    """
    z_idx, z_vals = _accumulate(c_idx, c_vals, t_idx, t_vals, accum, out_dtype)
    # Mask-true positions take Z entries.
    z_keep = mask_at(z_idx)
    out_idx = z_idx[z_keep]
    out_vals = z_vals[z_keep]
    if not replace and c_idx.size:
        # Mask-false positions retain old C entries.
        c_keep = ~mask_at(c_idx)
        keep_idx = c_idx[c_keep]
        keep_vals = c_vals[c_keep].astype(out_dtype, copy=False)
        if keep_idx.size:
            merged_idx = np.concatenate([out_idx, keep_idx])
            merged_vals = np.concatenate([out_vals, keep_vals])
            order = np.argsort(merged_idx, kind="stable")
            out_idx = merged_idx[order]
            out_vals = merged_vals[order]
    return out_idx, out_vals


def _output_type(c_type: GrBType, t_type: GrBType, accum: Optional[BinaryOp]) -> GrBType:
    """Domain of the written output: C's own domain (spec: output is typed)."""
    # The spec casts Z into C's domain on write; we honour C's domain so that
    # repeated accumulation does not silently widen the output.
    del t_type, accum
    return c_type


def merge_vector(
    c: SparseVector,
    t: SparseVector,
    mask: Optional[SparseVector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
    share: bool = True,
) -> SparseVector:
    """Apply the write pipeline and return the new output vector.

    ``share=False`` forbids returning ``t`` itself (used when the caller
    passes a long-lived container — e.g. a cached transpose — that must not
    become aliased with a mutable output).
    """
    check_mask_shape(mask, (c.size,))
    if t.size != c.size:
        # Backends guarantee matching sizes; guard for direct callers.
        from ..exceptions import DimensionMismatchError

        raise DimensionMismatchError("result size", expected=c.size, actual=t.size)
    out_type = _output_type(c.type, t.type, accum)
    if share and _trivial_merge(mask, accum, desc):
        return _note_result(t.astype(out_type))
    idx, vals = _merge_indexed(
        c.indices,
        c.values,
        t.indices,
        t.values.astype(out_type.dtype, copy=False),
        lambda pos: vector_mask_at(mask, desc, pos),
        accum,
        desc.replace,
        out_type.dtype,
    )
    return _note_result(SparseVector(c.size, idx, vals, out_type))


def merge_matrix(
    c: CSRMatrix,
    t: CSRMatrix,
    mask: Optional[CSRMatrix] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
    share: bool = True,
) -> CSRMatrix:
    """Apply the write pipeline and return the new output matrix.

    ``share`` as in :func:`merge_vector`.
    """
    check_mask_shape(mask, c.shape)
    if t.shape != c.shape:
        from ..exceptions import DimensionMismatchError

        raise DimensionMismatchError("result shape", expected=c.shape, actual=t.shape)
    out_type = _output_type(c.type, t.type, accum)
    if share and _trivial_merge(mask, accum, desc):
        return _note_result(t.astype(out_type))
    c_rows = np.repeat(np.arange(c.nrows, dtype=np.int64), c.row_degrees())
    t_rows = np.repeat(np.arange(t.nrows, dtype=np.int64), t.row_degrees())
    c_keys = flat_keys(c_rows, c.indices, c.ncols)
    t_keys = flat_keys(t_rows, t.indices, t.ncols)
    keys, vals = _merge_indexed(
        c_keys,
        c.values,
        t_keys,
        t.values.astype(out_type.dtype, copy=False),
        lambda pos: matrix_mask_at(mask, desc, pos),
        accum,
        desc.replace,
        out_type.dtype,
    )
    rows = keys // c.ncols if c.ncols else keys
    cols = keys - rows * c.ncols if c.ncols else keys
    indptr = np.zeros(c.nrows + 1, dtype=np.int64)
    if rows.size:
        np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return _note_result(CSRMatrix(c.nrows, c.ncols, indptr, cols, vals, out_type))
