"""Edge batches: the unit of mutation for streaming graphs.

An :class:`EdgeBatch` is an ordered sequence of edge operations — inserts
``(i, j, v)`` (which also overwrite an existing edge's value) and deletes
``(i, j)`` — applied atomically to a :class:`~repro.streaming.graph.
DynamicGraph`.  Batches are plain JSON-serialisable values so the mutation
fuzzer can embed them in replayable programs.

Within one batch the *last* operation on an ``(i, j)`` pair wins, matching
the semantics of applying the ops one at a time; :meth:`normalized` folds a
batch to that canonical deduplicated form (sorted by ``(row, col)``), which
is what the delta overlay stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import IndexOutOfBoundsError, InvalidValueError

__all__ = ["EdgeBatch", "random_edge_batch"]


@dataclass
class EdgeBatch:
    """An ordered list of edge inserts/deletes.

    ``rows``/``cols``/``vals`` are parallel arrays; ``is_insert[k]`` tells
    whether op ``k`` inserts (value ``vals[k]``) or deletes (``vals[k]``
    ignored, stored as 0).
    """

    rows: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    cols: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    vals: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))
    is_insert: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.vals = np.asarray(self.vals, dtype=np.float64)
        self.is_insert = np.asarray(self.is_insert, dtype=bool)
        sizes = {a.size for a in (self.rows, self.cols, self.vals, self.is_insert)}
        if len(sizes) > 1:
            raise InvalidValueError(
                f"ragged edge batch arrays: sizes {sorted(sizes)}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_ops(
        cls, ops: Sequence[Tuple[str, int, int, Any]]
    ) -> "EdgeBatch":
        """Build from ``[("insert", i, j, v) | ("delete", i, j, _), ...]``."""
        rows = np.array([o[1] for o in ops], dtype=np.int64)
        cols = np.array([o[2] for o in ops], dtype=np.int64)
        vals = np.array(
            [float(o[3]) if o[0] == "insert" else 0.0 for o in ops], dtype=np.float64
        )
        ins = np.array([o[0] == "insert" for o in ops], dtype=bool)
        return cls(rows, cols, vals, ins)

    @classmethod
    def inserts(cls, rows: Any, cols: Any, vals: Any) -> "EdgeBatch":
        rows = np.asarray(rows, dtype=np.int64)
        return cls(rows, cols, vals, np.ones(rows.size, dtype=bool))

    @classmethod
    def deletes(cls, rows: Any, cols: Any) -> "EdgeBatch":
        rows = np.asarray(rows, dtype=np.int64)
        return cls(
            rows, cols, np.zeros(rows.size, dtype=np.float64),
            np.zeros(rows.size, dtype=bool),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.rows.size)

    @property
    def insert_count(self) -> int:
        return int(np.count_nonzero(self.is_insert))

    @property
    def delete_count(self) -> int:
        return len(self) - self.insert_count

    def validate(self, nrows: int, ncols: int) -> None:
        if len(self) == 0:
            return
        if self.rows.min() < 0 or self.rows.max() >= nrows:
            raise IndexOutOfBoundsError(
                f"edge batch row outside [0, {nrows})"
            )
        if self.cols.min() < 0 or self.cols.max() >= ncols:
            raise IndexOutOfBoundsError(
                f"edge batch col outside [0, {ncols})"
            )

    def normalized(self) -> "EdgeBatch":
        """Last-wins dedup per ``(row, col)``, sorted by ``(row, col)``.

        Applying the normalized batch is equivalent to applying the original
        ops in order — an insert-then-delete pair collapses to the delete,
        a delete-then-insert to the insert, repeated inserts to the last
        value.
        """
        if len(self) <= 1:
            return self
        order = np.lexsort((np.arange(len(self)), self.cols, self.rows))
        r, c = self.rows[order], self.cols[order]
        # Keep the last op of each equal (row, col) run.
        last = np.ones(r.size, dtype=bool)
        last[:-1] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        sel = order[last]
        return EdgeBatch(
            self.rows[sel], self.cols[sel], self.vals[sel], self.is_insert[sel]
        )

    # ------------------------------------------------------------------
    # Serialisation (for mutation programs / repros)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, List[Any]]:
        return {
            "rows": self.rows.tolist(),
            "cols": self.cols.tolist(),
            "vals": self.vals.tolist(),
            "is_insert": self.is_insert.astype(int).tolist(),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "EdgeBatch":
        return cls(
            np.asarray(d["rows"], dtype=np.int64),
            np.asarray(d["cols"], dtype=np.int64),
            np.asarray(d["vals"], dtype=np.float64),
            np.asarray(d["is_insert"], dtype=bool),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeBatch(+{self.insert_count}/-{self.delete_count})"
        )


def random_edge_batch(
    seed: int,
    n: int,
    inserts: int,
    deletes: int = 0,
    existing: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> EdgeBatch:
    """A deterministic random batch on an ``n``-vertex graph.

    Inserted edges are uniform random pairs with small integral weights
    (exact in floating point).  Deletes are sampled from ``existing``
    ``(rows, cols)`` arrays when given — plus an occasional nonexistent
    edge, exercising the delete-is-a-no-op contract — otherwise uniform
    random pairs.
    """
    rng = np.random.default_rng(np.random.SeedSequence([0x57E4, int(seed)]))
    ops: List[Tuple[str, int, int, float]] = []
    for _ in range(int(inserts)):
        ops.append(
            (
                "insert",
                int(rng.integers(0, n)),
                int(rng.integers(0, n)),
                float(rng.integers(1, 10)),
            )
        )
    for _ in range(int(deletes)):
        if existing is not None and existing[0].size and rng.random() < 0.8:
            er, ec = existing
            k = int(rng.integers(0, er.size))
            ops.append(("delete", int(er[k]), int(ec[k]), 0.0))
        else:
            ops.append(
                ("delete", int(rng.integers(0, n)), int(rng.integers(0, n)), 0.0)
            )
    rng.shuffle(ops)
    if not ops:
        return EdgeBatch()
    return EdgeBatch.from_ops(ops)
