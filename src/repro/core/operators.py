"""GraphBLAS operators: unary, binary, and index-unary.

Operators are thin named wrappers around NumPy ufunc-style callables.  The
same callable serves every backend: the reference backend applies it to
scalars, the CPU backend applies it to whole NumPy arrays, and the simulated
GPU backend applies it inside vectorized "device kernels".  This mirrors how
GBTL passes the same functor template argument to every backend.

Standard operators follow the GraphBLAS C API naming (``PLUS``, ``TIMES``,
``MIN``, ``FIRST``, ``SECOND``, ``LAND``...).  All are registered in module
level registries so they can be looked up by name (useful for benchmark
drivers and serialization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..types import BOOL, GrBType

__all__ = [
    "UnaryOp",
    "BinaryOp",
    "IndexUnaryOp",
    "unary_op",
    "binary_op",
    "index_unary_op",
    # unary
    "IDENTITY",
    "AINV",
    "MINV",
    "LNOT",
    "ABS",
    "BNOT",
    "SQRT",
    "EXP",
    "LOG",
    "ONE",
    # binary
    "PLUS",
    "MINUS",
    "RMINUS",
    "TIMES",
    "DIV",
    "RDIV",
    "MIN",
    "MAX",
    "FIRST",
    "SECOND",
    "ANY",
    "PAIR",
    "LAND",
    "LOR",
    "LXOR",
    "LXNOR",
    "EQ",
    "NE",
    "GT",
    "LT",
    "GE",
    "LE",
    "POW",
    "HYPOT",
    # index unary
    "ROWINDEX",
    "COLINDEX",
    "DIAGINDEX",
    "TRIL",
    "TRIU",
    "DIAG",
    "OFFDIAG",
    "VALUEEQ",
    "VALUENE",
    "VALUEGT",
    "VALUELT",
    "VALUEGE",
    "VALUELE",
]


@dataclass(frozen=True)
class UnaryOp:
    """A function of one stored value: ``z = f(x)``.

    ``func`` must accept scalars and NumPy arrays alike.  ``out_type`` maps an
    input domain to an output domain; ``None`` means "same as input".
    """

    name: str
    func: Callable[[Any], Any] = field(compare=False)
    out_type: Optional[Callable[[GrBType], GrBType]] = field(
        default=None, compare=False
    )

    def __call__(self, x: Any) -> Any:
        return self.func(x)

    def result_type(self, t: GrBType) -> GrBType:
        return self.out_type(t) if self.out_type is not None else t

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"UnaryOp({self.name})"


@dataclass(frozen=True)
class BinaryOp:
    """A function of two stored values: ``z = f(x, y)``.

    Attributes
    ----------
    bool_out:
        True for comparison-style operators whose output domain is BOOL
        regardless of input domains.
    commutative / associative:
        Algebraic flags; associativity is what a Monoid additionally needs,
        commutativity lets backends reorder reductions.
    """

    name: str
    func: Callable[[Any, Any], Any] = field(compare=False)
    bool_out: bool = field(default=False, compare=False)
    commutative: bool = field(default=False, compare=False)
    associative: bool = field(default=False, compare=False)

    def __call__(self, x: Any, y: Any) -> Any:
        return self.func(x, y)

    def result_type(self, t: GrBType) -> GrBType:
        """Output domain given the (already promoted) input domain."""
        return BOOL if self.bool_out else t

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BinaryOp({self.name})"


@dataclass(frozen=True)
class IndexUnaryOp:
    """A function of a stored value and its position: ``z = f(x, i, j, s)``.

    Used by ``select`` and ``apply``-with-index (GxB-style).  ``func`` is
    vectorized over ``x``, ``i``, ``j`` (NumPy arrays) with scalar ``s``
    (the "thunk").  For vectors, ``j`` is passed as zeros.
    """

    name: str
    func: Callable[[Any, Any, Any, Any], Any] = field(compare=False)
    bool_out: bool = field(default=True, compare=False)

    def __call__(self, x: Any, i: Any, j: Any, s: Any) -> Any:
        return self.func(x, i, j, s)

    def result_type(self, t: GrBType) -> GrBType:
        return BOOL if self.bool_out else t

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexUnaryOp({self.name})"


UNARY_OPS: Dict[str, UnaryOp] = {}
BINARY_OPS: Dict[str, BinaryOp] = {}
INDEX_UNARY_OPS: Dict[str, IndexUnaryOp] = {}


def unary_op(name: str, func: Callable, out_type=None) -> UnaryOp:
    """Create and register a :class:`UnaryOp`."""
    op = UnaryOp(name, func, out_type)
    UNARY_OPS[name] = op
    return op


def binary_op(
    name: str,
    func: Callable,
    *,
    bool_out: bool = False,
    commutative: bool = False,
    associative: bool = False,
) -> BinaryOp:
    """Create and register a :class:`BinaryOp`."""
    op = BinaryOp(name, func, bool_out, commutative, associative)
    BINARY_OPS[name] = op
    return op


def index_unary_op(name: str, func: Callable, *, bool_out: bool = True) -> IndexUnaryOp:
    """Create and register an :class:`IndexUnaryOp`."""
    op = IndexUnaryOp(name, func, bool_out)
    INDEX_UNARY_OPS[name] = op
    return op


# --------------------------------------------------------------------------
# Standard unary operators
# --------------------------------------------------------------------------

IDENTITY = unary_op("IDENTITY", lambda x: x)
AINV = unary_op("AINV", np.negative)
MINV = unary_op("MINV", lambda x: 1 / np.asarray(x) if np.ndim(x) else 1 / x)
LNOT = unary_op("LNOT", np.logical_not, out_type=lambda t: BOOL)
ABS = unary_op("ABS", np.abs)
BNOT = unary_op("BNOT", np.invert)
SQRT = unary_op("SQRT", np.sqrt)
EXP = unary_op("EXP", np.exp)
LOG = unary_op("LOG", np.log)
ONE = unary_op("ONE", lambda x: np.ones_like(np.asarray(x)) if np.ndim(x) else type(x)(1))


# --------------------------------------------------------------------------
# Standard binary operators
# --------------------------------------------------------------------------

PLUS = binary_op("PLUS", np.add, commutative=True, associative=True)
MINUS = binary_op("MINUS", np.subtract)
RMINUS = binary_op("RMINUS", lambda x, y: np.subtract(y, x))
TIMES = binary_op("TIMES", np.multiply, commutative=True, associative=True)
DIV = binary_op("DIV", np.divide)
RDIV = binary_op("RDIV", lambda x, y: np.divide(y, x))
MIN = binary_op("MIN", np.minimum, commutative=True, associative=True)
MAX = binary_op("MAX", np.maximum, commutative=True, associative=True)
FIRST = binary_op("FIRST", lambda x, y: x, associative=True)
SECOND = binary_op("SECOND", lambda x, y: y, associative=True)
# ANY: "pick either"; we deterministically pick the first operand so results
# are reproducible across backends (the spec allows any choice).
ANY = binary_op("ANY", lambda x, y: x, commutative=True, associative=True)
PAIR = binary_op(
    "PAIR", lambda x, y: np.ones_like(np.asarray(x)) if np.ndim(x) else type(x)(1),
    commutative=True, associative=True,
)
LAND = binary_op("LAND", np.logical_and, bool_out=True, commutative=True, associative=True)
LOR = binary_op("LOR", np.logical_or, bool_out=True, commutative=True, associative=True)
LXOR = binary_op("LXOR", np.logical_xor, bool_out=True, commutative=True, associative=True)
LXNOR = binary_op(
    "LXNOR", lambda x, y: np.logical_not(np.logical_xor(x, y)),
    bool_out=True, commutative=True, associative=True,
)
EQ = binary_op("EQ", np.equal, bool_out=True, commutative=True)
NE = binary_op("NE", np.not_equal, bool_out=True, commutative=True)
GT = binary_op("GT", np.greater, bool_out=True)
LT = binary_op("LT", np.less, bool_out=True)
GE = binary_op("GE", np.greater_equal, bool_out=True)
LE = binary_op("LE", np.less_equal, bool_out=True)
POW = binary_op("POW", np.power)
HYPOT = binary_op("HYPOT", np.hypot, commutative=True)


# --------------------------------------------------------------------------
# Standard index-unary operators (GrB_IndexUnaryOp)
# --------------------------------------------------------------------------

ROWINDEX = index_unary_op(
    "ROWINDEX", lambda x, i, j, s: np.asarray(i) + s, bool_out=False
)
COLINDEX = index_unary_op(
    "COLINDEX", lambda x, i, j, s: np.asarray(j) + s, bool_out=False
)
DIAGINDEX = index_unary_op(
    "DIAGINDEX", lambda x, i, j, s: np.asarray(j) - np.asarray(i) + s, bool_out=False
)
TRIL = index_unary_op("TRIL", lambda x, i, j, s: np.asarray(j) <= np.asarray(i) + s)
TRIU = index_unary_op("TRIU", lambda x, i, j, s: np.asarray(j) >= np.asarray(i) + s)
DIAG = index_unary_op("DIAG", lambda x, i, j, s: np.asarray(j) == np.asarray(i) + s)
OFFDIAG = index_unary_op("OFFDIAG", lambda x, i, j, s: np.asarray(j) != np.asarray(i) + s)
VALUEEQ = index_unary_op("VALUEEQ", lambda x, i, j, s: np.equal(x, s))
VALUENE = index_unary_op("VALUENE", lambda x, i, j, s: np.not_equal(x, s))
VALUEGT = index_unary_op("VALUEGT", lambda x, i, j, s: np.greater(x, s))
VALUELT = index_unary_op("VALUELT", lambda x, i, j, s: np.less(x, s))
VALUEGE = index_unary_op("VALUEGE", lambda x, i, j, s: np.greater_equal(x, s))
VALUELE = index_unary_op("VALUELE", lambda x, i, j, s: np.less_equal(x, s))
