"""Device kernels of the simulated CUDA backend.

Each kernel pairs the semantic computation (shared with the CPU backend's
vectorized kernels — the simulation's "device code") with a *work estimator*
that inspects the actual operands and reports FLOPs, bytes by access class,
thread count, and SIMT divergence, from which the cost model derives the
simulated duration.  The kernel structures mirror what GBTL-CUDA used via
CUSP:

- ``spmv_csr_vector`` — warp-per-row CSR SpMV (pull);
- ``spmsv_push`` — frontier-expansion scatter SpMSpV (push);
- ``spgemm_hash`` — block-per-row hash SpGEMM;
- ``ewise_map`` / ``apply_map`` — flat elementwise maps;
- ``reduce_tree`` — tree reduction;
- ``transpose_countsort`` — counting-sort transpose.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ...gpu.costmodel import KernelWork
from ...gpu.kernel import Kernel
from ...gpu.simt import (
    COALESCING,
    divergence_thread_per_row,
    divergence_warp_per_row,
)
from ...types import GrBType, promote
from ..cpu.ewise import ewise_add_mat, ewise_add_vec, ewise_mult_mat, ewise_mult_vec
from ..cpu.reduce_apply import apply_mat, apply_vec, reduce_mat_vector
from ..cpu.spgemm import spgemm_esr
from ..cpu.spmv import row_gather_product, scatter_product, take_ranges

__all__ = [
    "combine_coalescing",
    "SPMV_CSR_VECTOR",
    "SPMSV_PUSH",
    "SPGEMM_HASH",
    "EWISE_ADD_V",
    "EWISE_MULT_V",
    "EWISE_ADD_M",
    "EWISE_MULT_M",
    "APPLY_V",
    "APPLY_M",
    "REDUCE_TREE",
    "REDUCE_ROWS",
    "TRANSPOSE_COUNTSORT",
]


def combine_coalescing(parts: Iterable[Tuple[float, str]]) -> Tuple[float, float]:
    """Fold (bytes, access-class) parts into (total_bytes, effective factor).

    The cost model divides bandwidth by one factor, so transfer time is
    ``total · factor / bw``; the byte-weighted mean of the per-class factors
    preserves the summed per-part times: ``total · f_eff = Σ bytes_i · f_i``.
    """
    total = 0.0
    weighted = 0.0
    for nbytes, klass in parts:
        f = COALESCING[klass]
        total += nbytes
        weighted += nbytes * f
    if total <= 0.0:
        return 0.0, 1.0
    return total, weighted / total


_IDX = 8  # bytes per index (int64)


# ---------------------------------------------------------------------------
# SpMV — warp-per-row CSR-vector kernel (pull direction)
# ---------------------------------------------------------------------------


def _spmv_run(a, u, semiring, out_type, flip, rows):
    return row_gather_product(a, u, semiring, out_type, flip=flip, rows=rows)


def _spmv_work(a: CSRMatrix, u: SparseVector, semiring, out_type, flip, rows) -> KernelWork:
    if rows is None:
        lens = a.row_degrees()
        nrows = a.nrows
    else:
        lens = a.indptr[np.asarray(rows) + 1] - a.indptr[np.asarray(rows)]
        nrows = len(rows)
    nnz = float(lens.sum())
    item = a.type.nbytes
    reads, coal = combine_coalescing(
        [
            (2.0 * nrows * _IDX, "sequential"),  # indptr
            (nnz * (_IDX + item), "segmented"),  # column indices + values
            (nnz * (u.type.nbytes + _IDX), "gather"),  # x[col] lookups (binary probe)
        ]
    )
    written = float(min(nrows, u.nvals * 8 + nrows)) * (out_type.nbytes + _IDX)
    return KernelWork(
        flops=2.0 * nnz,
        bytes_read=reads,
        bytes_written=written,
        threads=nrows * 32,
        divergence=divergence_warp_per_row(lens),
        coalescing=coal,
    )


SPMV_CSR_VECTOR = Kernel("spmv_csr_vector", _spmv_run, _spmv_work)


# ---------------------------------------------------------------------------
# SpMSpV — frontier-expansion push kernel
# ---------------------------------------------------------------------------


def _spmsv_run(csr, u, semiring, out_type, flip):
    return scatter_product(csr, u, semiring, out_type, flip=flip)


def _spmsv_work(csr: CSRMatrix, u: SparseVector, semiring, out_type, flip) -> KernelWork:
    lens = csr.indptr[u.indices + 1] - csr.indptr[u.indices]
    expanded = float(lens.sum())
    item = csr.type.nbytes
    reads, coal_r = combine_coalescing(
        [
            (2.0 * u.nvals * _IDX, "gather"),  # indptr probes at frontier rows
            (expanded * (_IDX + item), "segmented"),  # expanded row slices
        ]
    )
    # Scattered combine of duplicates (atomics on the output).
    writes, coal_w = combine_coalescing([(expanded * (out_type.nbytes + _IDX), "atomic")])
    total = reads + writes
    coal = (reads * coal_r + writes * coal_w) / total if total else 1.0
    return KernelWork(
        flops=2.0 * expanded,
        bytes_read=reads,
        bytes_written=writes,
        threads=max(int(u.nvals), 1) * 32,
        divergence=divergence_thread_per_row(lens),
        coalescing=coal,
    )


SPMSV_PUSH = Kernel("spmsv_push", _spmsv_run, _spmsv_work)


# ---------------------------------------------------------------------------
# SpGEMM — hash-per-row kernel
# ---------------------------------------------------------------------------


def _spgemm_run(a, b, semiring, out_type):
    return spgemm_esr(a, b, semiring, out_type)


def _spgemm_work(a: CSRMatrix, b: CSRMatrix, semiring, out_type) -> KernelWork:
    # FLOPs: one multiply+add per expanded partial product.
    _, lens = take_ranges(b.indptr, a.indices)
    expanded = float(lens.sum())
    item = a.type.nbytes
    # Per-output-row work drives divergence for a block-per-row kernel.
    row_flops = np.zeros(a.nrows, dtype=np.float64)
    if a.nvals:
        a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        np.add.at(row_flops, a_rows, lens.astype(np.float64))
    reads, coal = combine_coalescing(
        [
            (a.nvals * (_IDX + item), "segmented"),  # A entries
            (expanded * (_IDX + item), "gather"),  # B row slices per A entry
        ]
    )
    writes = expanded * (out_type.nbytes + _IDX)  # hash-table updates
    total = reads + writes
    coal = (reads * coal + writes * COALESCING["atomic"]) / total if total else 1.0
    return KernelWork(
        flops=2.0 * expanded,
        bytes_read=reads,
        bytes_written=writes,
        threads=max(a.nrows, 1) * 64,
        divergence=divergence_thread_per_row(row_flops, warp_size=32),
        coalescing=coal,
    )


SPGEMM_HASH = Kernel("spgemm_hash", _spgemm_run, _spgemm_work)


def _spgemm_masked_run(a, b, semiring, out_type, allowed_keys):
    from ..cpu.spgemm import spgemm_masked_esr

    return spgemm_masked_esr(a, b, semiring, out_type, allowed_keys)


def _spgemm_masked_work(a: CSRMatrix, b: CSRMatrix, semiring, out_type, allowed_keys) -> KernelWork:
    """Masked hash SpGEMM: probes still expand every partial product, but
    hash-table writes only happen at mask positions, so write traffic (the
    atomic, worst-coalesced part) scales with the mask instead of the
    expansion."""
    _, lens = take_ranges(b.indptr, a.indices)
    expanded = float(lens.sum())
    item = a.type.nbytes
    row_flops = np.zeros(a.nrows, dtype=np.float64)
    if a.nvals:
        a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        np.add.at(row_flops, a_rows, lens.astype(np.float64))
    reads, coal_r = combine_coalescing(
        [
            (a.nvals * (_IDX + item), "segmented"),  # A entries
            (expanded * (_IDX + item), "gather"),  # B row slices
            (expanded * _IDX, "gather"),  # mask membership probes
        ]
    )
    # Writes bounded by mask size (each allowed key updated ~a few times).
    writes = min(float(allowed_keys.size) * 4.0, max(expanded, 1.0)) * (
        out_type.nbytes + _IDX
    )
    total = reads + writes
    coal = (reads * coal_r + writes * COALESCING["atomic"]) / total if total else 1.0
    return KernelWork(
        flops=2.0 * expanded,
        bytes_read=reads,
        bytes_written=writes,
        threads=max(a.nrows, 1) * 64,
        divergence=divergence_thread_per_row(row_flops, warp_size=32),
        coalescing=coal,
    )


SPGEMM_HASH_MASKED = Kernel("spgemm_hash_masked", _spgemm_masked_run, _spgemm_masked_work)


# ---------------------------------------------------------------------------
# Elementwise maps
# ---------------------------------------------------------------------------


def _ewise_work_v(u: SparseVector, v: SparseVector, op) -> KernelWork:
    n = float(u.nvals + v.nvals)
    item = max(u.type.nbytes, v.type.nbytes)
    reads, coal = combine_coalescing([(n * (item + _IDX), "sequential")])
    return KernelWork(
        flops=n,
        bytes_read=reads,
        bytes_written=n * (item + _IDX),
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


def _ewise_work_m(a: CSRMatrix, b: CSRMatrix, op) -> KernelWork:
    n = float(a.nvals + b.nvals)
    item = max(a.type.nbytes, b.type.nbytes)
    reads, coal = combine_coalescing([(n * (item + _IDX), "sequential")])
    return KernelWork(
        flops=n,
        bytes_read=reads,
        bytes_written=n * (item + _IDX),
        threads=max(int(n), 1),
        divergence=1.0,
        coalescing=coal,
    )


EWISE_ADD_V = Kernel("ewise_add_v", lambda u, v, op: ewise_add_vec(u, v, op), _ewise_work_v)
EWISE_MULT_V = Kernel("ewise_mult_v", lambda u, v, op: ewise_mult_vec(u, v, op), _ewise_work_v)
EWISE_ADD_M = Kernel("ewise_add_m", lambda a, b, op: ewise_add_mat(a, b, op), _ewise_work_m)
EWISE_MULT_M = Kernel("ewise_mult_m", lambda a, b, op: ewise_mult_mat(a, b, op), _ewise_work_m)


# ---------------------------------------------------------------------------
# Apply, reduce, transpose
# ---------------------------------------------------------------------------


def _apply_work_v(u: SparseVector, op) -> KernelWork:
    n = float(u.nvals)
    item = u.type.nbytes
    return KernelWork(
        flops=n,
        bytes_read=n * item,
        bytes_written=n * item,
        threads=max(int(n), 1),
    )


def _apply_work_m(a: CSRMatrix, op) -> KernelWork:
    n = float(a.nvals)
    item = a.type.nbytes
    return KernelWork(
        flops=n,
        bytes_read=n * item,
        bytes_written=n * item,
        threads=max(int(n), 1),
    )


APPLY_V = Kernel("apply_v", lambda u, op: apply_vec(u, op), _apply_work_v)
APPLY_M = Kernel("apply_m", lambda a, op: apply_mat(a, op), _apply_work_m)


def _reduce_tree_run(values: np.ndarray, monoid: Monoid, typ: GrBType):
    return monoid.reduce_array(values, typ)


def _reduce_tree_work(values: np.ndarray, monoid, typ) -> KernelWork:
    n = float(values.size)
    item = values.dtype.itemsize
    # log2(n) passes, but bytes dominated by the first: charge 2n reads.
    return KernelWork(
        flops=n,
        bytes_read=2.0 * n * item,
        bytes_written=max(n / 256.0, 1.0) * item,
        threads=max(int(n), 1),
    )


REDUCE_TREE = Kernel("reduce_tree", _reduce_tree_run, _reduce_tree_work)


def _reduce_rows_work(a: CSRMatrix, monoid) -> KernelWork:
    lens = a.row_degrees()
    n = float(a.nvals)
    item = a.type.nbytes
    return KernelWork(
        flops=n,
        bytes_read=n * item + a.nrows * 2 * _IDX,
        bytes_written=a.nrows * (item + _IDX),
        threads=max(a.nrows, 1) * 32,
        divergence=divergence_warp_per_row(lens),
    )


REDUCE_ROWS = Kernel(
    "reduce_rows", lambda a, monoid: reduce_mat_vector(a, monoid), _reduce_rows_work
)


def _transpose_work(a: CSRMatrix) -> KernelWork:
    n = float(a.nvals)
    item = a.type.nbytes
    reads, coal = combine_coalescing(
        [
            (n * (_IDX + item), "sequential"),
            (n * (_IDX + item), "scatter"),  # counting-sort scatter phase
        ]
    )
    return KernelWork(
        flops=n,
        bytes_read=reads / 2,
        bytes_written=reads / 2,
        threads=max(int(n), 1),
        coalescing=coal,
    )


TRANSPOSE_COUNTSORT = Kernel(
    "transpose_countsort", lambda a: a.transpose(), _transpose_work
)


# ---------------------------------------------------------------------------
# Extract (gather) and assign (scatter) accounting kernels
# ---------------------------------------------------------------------------


def _gather_work(n_lookups: float, item: int) -> KernelWork:
    reads, coal = combine_coalescing([(n_lookups * (item + _IDX), "gather")])
    return KernelWork(
        flops=n_lookups,
        bytes_read=reads,
        bytes_written=n_lookups * (item + _IDX),
        threads=max(int(n_lookups), 1),
        coalescing=coal,
    )


def _gather_run(fn, n, item):
    # The run arg is a thunk computing the semantics; n/item size the work.
    return fn()


GATHER = Kernel("gather_extract", _gather_run, lambda fn, n, item: _gather_work(n, item))


def _scatter_work(nvals: float, item: int) -> KernelWork:
    writes, coal = combine_coalescing([(nvals * (item + _IDX), "scatter")])
    return KernelWork(
        flops=nvals,
        bytes_read=nvals * (item + _IDX),
        bytes_written=writes,
        threads=max(int(nvals), 1),
        coalescing=coal,
    )


SCATTER_ASSIGN = Kernel(
    "scatter_assign", lambda n, item: None, lambda n, item: _scatter_work(n, item)
)


def _select_work(nvals: float, item: int) -> KernelWork:
    """select / indexed-apply: stream entries, evaluate predicate, compact
    with a prefix-sum (charged as an extra index pass)."""
    reads, coal = combine_coalescing(
        [
            (nvals * (item + 2 * _IDX), "sequential"),  # values + coords
            (nvals * _IDX, "sequential"),  # prefix-sum pass
        ]
    )
    return KernelWork(
        flops=2.0 * nvals,
        bytes_read=reads,
        bytes_written=nvals * (item + _IDX),
        threads=max(int(nvals), 1),
        coalescing=coal,
    )


def _select_run(fn, nvals, item):
    return fn()


SELECT_COMPACT = Kernel(
    "select_compact", _select_run, lambda fn, nvals, item: _select_work(nvals, item)
)
