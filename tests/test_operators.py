"""Operators: registries, arithmetic, array/scalar duality, index ops."""

import numpy as np
import pytest

from repro.core import operators as op
from repro.types import BOOL, FP64, INT64


class TestUnary:
    def test_identity(self):
        assert op.IDENTITY(5) == 5

    def test_ainv(self):
        assert op.AINV(3.0) == -3.0

    def test_minv(self):
        assert op.MINV(4.0) == 0.25

    def test_lnot_output_type(self):
        assert op.LNOT.result_type(FP64) is BOOL
        assert bool(op.LNOT(0.0)) is True

    def test_abs(self):
        assert op.ABS(-2.5) == 2.5

    def test_one(self):
        assert op.ONE(17.0) == 1.0

    def test_one_on_array(self):
        out = op.ONE(np.array([3.0, -2.0]))
        np.testing.assert_array_equal(out, [1.0, 1.0])

    def test_unary_works_on_arrays(self):
        x = np.array([1.0, 4.0, 9.0])
        np.testing.assert_allclose(op.SQRT(x), [1.0, 2.0, 3.0])

    def test_registry(self):
        assert op.UNARY_OPS["ABS"] is op.ABS

    def test_result_type_default_same(self):
        assert op.ABS.result_type(INT64) is INT64


class TestBinary:
    def test_plus_times(self):
        assert op.PLUS(2, 3) == 5
        assert op.TIMES(2, 3) == 6

    def test_minus_rminus(self):
        assert op.MINUS(5, 2) == 3
        assert op.RMINUS(5, 2) == -3

    def test_div_rdiv(self):
        assert op.DIV(6.0, 3.0) == 2.0
        assert op.RDIV(3.0, 6.0) == 2.0

    def test_min_max(self):
        assert op.MIN(2, 7) == 2
        assert op.MAX(2, 7) == 7

    def test_first_second_any_pair(self):
        assert op.FIRST(1, 2) == 1
        assert op.SECOND(1, 2) == 2
        assert op.ANY(1, 2) == 1  # deterministic choice
        assert op.PAIR(9.0, 8.0) == 1

    def test_comparisons_bool_out(self):
        for o in (op.EQ, op.NE, op.GT, op.LT, op.GE, op.LE):
            assert o.bool_out
            assert o.result_type(FP64) is BOOL
        assert bool(op.GT(3, 2))
        assert not bool(op.LT(3, 2))

    def test_logical(self):
        assert bool(op.LOR(False, True))
        assert not bool(op.LAND(False, True))
        assert bool(op.LXOR(False, True))
        assert bool(op.LXNOR(True, True))

    def test_arrays(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 1.0])
        np.testing.assert_array_equal(op.MAX(a, b), [3.0, 2.0])
        np.testing.assert_array_equal(op.FIRST(a, b), a)

    def test_flags(self):
        assert op.PLUS.commutative and op.PLUS.associative
        assert not op.MINUS.commutative

    def test_registry_and_factory(self):
        custom = op.binary_op("TEST_AVG", lambda x, y: (x + y) / 2, commutative=True)
        assert op.BINARY_OPS["TEST_AVG"] is custom
        assert custom(2.0, 4.0) == 3.0


class TestIndexUnary:
    def test_rowindex(self):
        out = op.ROWINDEX(np.array([9.0]), np.array([5]), np.array([0]), 1)
        assert out[0] == 6

    def test_tril_triu(self):
        i = np.array([2, 0])
        j = np.array([1, 2])
        x = np.ones(2)
        np.testing.assert_array_equal(op.TRIL(x, i, j, 0), [True, False])
        np.testing.assert_array_equal(op.TRIU(x, i, j, 0), [False, True])

    def test_diag_offdiag(self):
        i = np.array([1, 1])
        j = np.array([1, 2])
        x = np.ones(2)
        np.testing.assert_array_equal(op.DIAG(x, i, j, 0), [True, False])
        np.testing.assert_array_equal(op.OFFDIAG(x, i, j, 0), [False, True])

    def test_value_predicates(self):
        x = np.array([1.0, 5.0, 3.0])
        z = np.zeros(3, dtype=np.int64)
        np.testing.assert_array_equal(op.VALUEGT(x, z, z, 2.0), [False, True, True])
        np.testing.assert_array_equal(op.VALUEEQ(x, z, z, 3.0), [False, False, True])
        np.testing.assert_array_equal(op.VALUELE(x, z, z, 3.0), [True, False, True])

    def test_bool_out_flag(self):
        assert op.TRIL.bool_out
        assert not op.ROWINDEX.bool_out
        assert op.ROWINDEX.result_type(FP64) is FP64
        assert op.TRIL.result_type(FP64) is BOOL
