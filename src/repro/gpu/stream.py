"""Streams and events on the simulated device.

Each stream owns an independent timeline; work launched on different streams
overlaps (the device clock tracks the furthest timeline).  Events capture a
stream's current time and let another stream wait on it — enough to model
the copy/compute overlap and inter-kernel dependencies that a CUDA backend
orchestrates.

Stream creation, event record/wait, and synchronize are also the
happens-before edges the sanitizer reasons from (see
:mod:`repro.sanitizer.hb`); each notifies the active sanitizer, and the
hooks are no-ops when it is disabled.
"""

from __future__ import annotations

from typing import Optional

from ..sanitizer import runtime as _gbsan
from .device import Device, get_device

__all__ = ["Stream", "Event"]


class Event:
    """A recorded point on a stream's timeline."""

    __slots__ = ("time_us", "__weakref__")

    def __init__(self) -> None:
        self.time_us: Optional[float] = None

    @property
    def recorded(self) -> bool:
        return self.time_us is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Event t={self.time_us}>"


class Stream:
    """An ordered execution queue with its own simulated timeline."""

    def __init__(self, device: Optional[Device] = None):
        self.device = device or get_device()
        # A new stream becomes usable "now".
        self.timeline_us = self.device.clock_us
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_stream_created(self)

    def enqueue(self, duration_us: float) -> float:
        """Append ``duration_us`` of work; returns its start time."""
        start = max(self.timeline_us, 0.0)
        self.timeline_us = start + duration_us
        # The device-wide clock is the furthest any stream has reached.
        if self.timeline_us > self.device.clock_us:
            self.device.advance(self.timeline_us - self.device.clock_us)
        return start

    def record_event(self, event: Optional[Event] = None) -> Event:
        """``cudaEventRecord``: capture the stream's current time."""
        ev = event or Event()
        ev.time_us = self.timeline_us
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_event_record(self, ev)
        return ev

    def wait_event(self, event: Event) -> None:
        """``cudaStreamWaitEvent``: stall this stream until the event."""
        if not event.recorded:
            raise ValueError("waiting on an unrecorded event")
        assert event.time_us is not None
        self.timeline_us = max(self.timeline_us, event.time_us)
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_event_wait(self, event)

    def synchronize(self) -> float:
        """Block the host until this stream drains; returns its time."""
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_stream_sync(self)
        return self.timeline_us

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Stream t={self.timeline_us:.1f}us>"
