"""cuda_sim backend behaviour: residency, transfers, kernel accounting."""

import numpy as np
import pytest

import repro as gb
from repro.backends.cuda_sim.kernels import combine_coalescing
from repro.backends.dispatch import get_backend, use_backend
from repro.core import operations as ops
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.gpu.device import get_device, reset_device


@pytest.fixture(autouse=True)
def fresh_device():
    dev = reset_device()
    get_backend("cuda_sim").evict_all()
    yield dev
    reset_device()


def make_inputs(n=64, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.random((n, n))
    A[A < 0.8] = 0.0
    u = rng.random(n)
    return gb.Matrix.from_dense(A), gb.Vector.from_dense(u)


class TestResidency:
    def test_first_use_uploads(self):
        a, u = make_inputs()
        dev = get_device()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
        h2d = [r for r in dev.profiler.records if r.kind == "h2d"]
        assert len(h2d) == 2  # matrix + vector

    def test_repeated_use_does_not_reupload(self):
        a, u = make_inputs()
        dev = get_device()
        with use_backend("cuda_sim"):
            for _ in range(3):
                w = gb.Vector.sparse(gb.FP64, 64)
                ops.mxv(w, a, u, PLUS_TIMES)
        h2d = [r for r in dev.profiler.records if r.kind == "h2d"]
        assert len(h2d) == 2  # still just the first two uploads

    def test_results_are_device_resident(self):
        # Chained ops: result of one op feeds the next without re-upload.
        a, u = make_inputs()
        dev = get_device()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
            w2 = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w2, a, w, PLUS_TIMES)
        h2d = [r for r in dev.profiler.records if r.kind == "h2d"]
        # a, u uploaded; the merged result of the first mxv is a *new*
        # container produced by the frontend pipeline, so it uploads once.
        assert len(h2d) <= 3

    def test_explicit_download_charged(self):
        a, u = make_inputs()
        be = get_backend("cuda_sim")
        dev = get_device()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
        be.download(w.container)
        d2h = [r for r in dev.profiler.records if r.kind == "d2h"]
        assert len(d2h) == 1

    def test_evict_all_forces_reupload(self):
        a, u = make_inputs()
        be = get_backend("cuda_sim")
        dev = get_device()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
            be.evict_all()
            w2 = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w2, a, u, PLUS_TIMES)
        h2d = [r for r in dev.profiler.records if r.kind == "h2d"]
        assert len(h2d) == 4


class TestKernelAccounting:
    def test_mxv_launches_spmv_kernel(self):
        a, u = make_inputs()
        dev = get_device()
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.mxv(w, a, u, PLUS_TIMES)
        names = {r.name for r in dev.profiler.records if r.kind == "kernel"}
        assert names & {"spmv_csr_vector", "spmsv_push"}

    def test_mxm_launches_spgemm(self):
        a, _ = make_inputs()
        dev = get_device()
        with use_backend("cuda_sim"):
            c = gb.Matrix.sparse(gb.FP64, 64, 64)
            ops.mxm(c, a, a, PLUS_TIMES)
        names = {r.name.split("[", 1)[0] for r in dev.profiler.records if r.kind == "kernel"}
        assert "spgemm_hash" in names

    def test_kernel_time_grows_with_size(self):
        times = []
        for n in (64, 256):
            reset_device()
            get_backend("cuda_sim").evict_all()
            rng = np.random.default_rng(1)
            A = rng.random((n, n))
            A[A < 0.9] = 0.0
            a = gb.Matrix.from_dense(A)
            u = gb.Vector.from_dense(rng.random(n))
            with use_backend("cuda_sim"):
                w = gb.Vector.sparse(gb.FP64, n)
                ops.mxv(w, a, u, PLUS_TIMES)
            times.append(get_device().profiler.kernel_time_us)
        assert times[1] > times[0]

    def test_bfs_runs_entirely_on_device(self):
        g = gb.generators.rmat(scale=6, edge_factor=4, seed=5)
        dev = get_device()
        with use_backend("cuda_sim"):
            gb.algorithms.bfs_levels(g, 0)
        assert dev.profiler.launch_count > 0
        assert dev.clock_us > 0


class TestCombineCoalescing:
    def test_single_class(self):
        total, f = combine_coalescing([(100.0, "sequential")])
        assert total == 100.0 and f == 1.0

    def test_mixed_preserves_time(self):
        parts = [(100.0, "sequential"), (100.0, "gather")]
        total, f = combine_coalescing(parts)
        assert total == 200.0
        # time ∝ total·f must equal the sum of per-part times Σ bytes_i·f_i.
        assert total * f == pytest.approx(100.0 * 1.0 + 100.0 * 8.0)

    def test_empty(self):
        total, f = combine_coalescing([])
        assert total == 0.0 and f == 1.0
