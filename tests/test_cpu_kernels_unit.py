"""CPU backend internals: segments, take_ranges, direction heuristic."""

import numpy as np
import pytest

from repro.backends.cpu.segments import run_starts, segment_reduce, ufunc_for
from repro.backends.cpu.spmv import (
    choose_direction,
    mask_row_candidates,
    take_ranges,
)
from repro.containers.csr import CSRMatrix
from repro.containers.sparsevec import SparseVector
from repro.core.descriptor import DEFAULT, Descriptor
from repro.core.monoid import (
    ANY_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    Monoid,
    PLUS_MONOID,
)
from repro.core.operators import FIRST, SECOND, binary_op
from repro.types import FP64


class TestRunStarts:
    def test_basic(self):
        keys = np.array([0, 0, 1, 3, 3, 3])
        np.testing.assert_array_equal(run_starts(keys), [0, 2, 3])

    def test_all_distinct(self):
        np.testing.assert_array_equal(run_starts(np.array([1, 2, 3])), [0, 1, 2])

    def test_all_same(self):
        np.testing.assert_array_equal(run_starts(np.array([7, 7, 7])), [0])

    def test_empty(self):
        assert run_starts(np.array([], dtype=np.int64)).size == 0


class TestSegmentReduce:
    def test_plus(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        out = segment_reduce(v, np.array([0, 2]), PLUS_MONOID, np.float64)
        np.testing.assert_array_equal(out, [3.0, 7.0])

    def test_min_max(self):
        v = np.array([3.0, 1.0, 5.0, 2.0])
        starts = np.array([0, 2])
        np.testing.assert_array_equal(
            segment_reduce(v, starts, MIN_MONOID, np.float64), [1.0, 2.0]
        )
        np.testing.assert_array_equal(
            segment_reduce(v, starts, MAX_MONOID, np.float64), [3.0, 5.0]
        )

    def test_first_second_any(self):
        v = np.array([10.0, 20.0, 30.0, 40.0])
        starts = np.array([0, 2])
        first_m = Monoid("F", FIRST, lambda t: t.cast(0))
        second_m = Monoid("S", SECOND, lambda t: t.cast(0))
        np.testing.assert_array_equal(
            segment_reduce(v, starts, first_m, np.float64), [10.0, 30.0]
        )
        np.testing.assert_array_equal(
            segment_reduce(v, starts, second_m, np.float64), [20.0, 40.0]
        )
        np.testing.assert_array_equal(
            segment_reduce(v, starts, ANY_MONOID, np.float64), [10.0, 30.0]
        )

    def test_custom_monoid_python_fallback(self):
        gcd = binary_op("TEST_GCD_SEG", np.gcd, commutative=True, associative=True)
        # np.gcd IS a ufunc, so force the fallback with a plain lambda.
        fold = binary_op(
            "TEST_FOLD_SEG", lambda x, y: x * 10 + y, associative=True
        )
        m = Monoid("FOLD_M", fold, lambda t: t.cast(0))
        v = np.array([1, 2, 3, 4], dtype=np.int64)
        out = segment_reduce(v, np.array([0, 2]), m, np.int64)
        np.testing.assert_array_equal(out, [12, 34])

    def test_empty(self):
        out = segment_reduce(np.array([]), np.array([], dtype=np.int64), PLUS_MONOID, np.float64)
        assert out.size == 0

    def test_ufunc_for(self):
        from repro.core.operators import PLUS, MINUS

        assert ufunc_for(PLUS) is np.add
        assert ufunc_for(MINUS) is np.subtract  # func itself is a ufunc


class TestTakeRanges:
    def test_gathers_slices(self):
        indptr = np.array([0, 2, 2, 5])
        take, lens = take_ranges(indptr, np.array([0, 2]))
        np.testing.assert_array_equal(take, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(lens, [2, 3])

    def test_subset_rows(self):
        indptr = np.array([0, 2, 4, 6])
        take, lens = take_ranges(indptr, np.array([2, 0]))
        np.testing.assert_array_equal(take, [4, 5, 0, 1])
        np.testing.assert_array_equal(lens, [2, 2])

    def test_empty_rows(self):
        indptr = np.array([0, 0, 3])
        take, lens = take_ranges(indptr, np.array([0]))
        assert take.size == 0
        np.testing.assert_array_equal(lens, [0])

    def test_no_rows(self):
        take, lens = take_ranges(np.array([0, 1]), np.array([], dtype=np.int64))
        assert take.size == 0 and lens.size == 0


class TestMaskRowCandidates:
    def test_structural(self):
        m = SparseVector(5, [1, 3], [True, False], None)
        rows = mask_row_candidates(m, Descriptor(structural_mask=True))
        np.testing.assert_array_equal(rows, [1, 3])

    def test_valued_filters_false(self):
        m = SparseVector(5, [1, 3], [True, False], None)
        rows = mask_row_candidates(m, DEFAULT)
        np.testing.assert_array_equal(rows, [1])

    def test_complement_disables_pruning(self):
        m = SparseVector(5, [1], [True], None)
        assert mask_row_candidates(m, Descriptor(complement_mask=True)) is None

    def test_no_mask(self):
        assert mask_row_candidates(None, DEFAULT) is None


class TestChooseDirection:
    @pytest.fixture
    def a(self):
        # 100 rows, ~800 nnz.
        rng = np.random.default_rng(0)
        d = rng.random((100, 100))
        d[d < 0.92] = 0
        return CSRMatrix.from_dense(d)

    def test_explicit_passthrough(self, a):
        u = SparseVector.empty(100, FP64)
        assert choose_direction(a, u, None, DEFAULT, "push", True) == "push"
        assert choose_direction(a, u, None, DEFAULT, "pull", False) == "pull"

    def test_auto_small_frontier_pushes(self, a):
        u = SparseVector(100, [5], [1.0], FP64)
        assert choose_direction(a, u, None, DEFAULT, "auto", True) == "push"

    def test_auto_dense_frontier_pulls(self, a):
        u = SparseVector.full(100, 1.0, FP64)
        assert choose_direction(a, u, None, DEFAULT, "auto", True) == "pull"

    def test_auto_without_csc_never_pushes(self, a):
        u = SparseVector(100, [5], [1.0], FP64)
        assert choose_direction(a, u, None, DEFAULT, "auto", False) == "pull"
