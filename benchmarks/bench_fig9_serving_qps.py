"""Figure 9 — serving throughput/latency: batched coalescing vs unbatched.

New-workload experiment (no counterpart in the paper): the `repro.serve`
multi-tenant query service replays one Zipf-skewed synthetic trace — 10k
queries from a 1.2M-user population against a resident R-MAT scale-13
graph — twice, batched (coalescer on, ``max_batch=128``) and unbatched
(``max_batch=1``: every query is its own single-source launch, the
serving equivalent of the one-script-one-algorithm baseline).

Shape claims:

- **throughput** — coalescing sustains ≥ 3x the QPS of unbatched serving
  on the same trace: multi-source launches amortise kernel launches and
  adjacency reads across the batch, and Zipf-hot duplicate sources
  deduplicate into shared rows;
- **latency** — batched p99 is no worse than unbatched p99 at this
  arrival rate (the coalescer's added queueing wait is repaid many times
  over by shorter device queues);
- **bit identity** — every query's result digest is identical between the
  batched and unbatched runs, on ``cuda_sim`` for the full trace and on
  ``multi_sim`` (P ∈ {1, 2}) for a prefix — coalescing is a pure
  scheduling optimization, never a numerics change.

The JSON record carries the deterministic launch/H2D counters of both
cuda_sim runs (CI-gated by ``check_bench_regressions.py``) plus the
batch-size histograms recorded by ``sim_metrics``, and a latency-by-
coalescing-depth breakdown so regressions in batching policy show up as
shifted depth mass, not just as a blurred aggregate.
"""

from __future__ import annotations

import numpy as np

import repro as gb
from repro.bench.tables import format_table
from repro.serve import BatchPolicy, GraphService, TrafficSpec, generate_trace
from conftest import save_json, save_table, sim_metrics

SCALE = 13
GRAPH_SEED = 33
TRACE_SEED = 9
SPEC = TrafficSpec(
    qps=250_000.0,
    n_queries=10_000,
    n_users=1_200_000,
    n_tenants=8,
    source_skew=1.5,
    ppr_iters=5,
)
BATCHED = BatchPolicy(max_batch=128, max_wait_us=3_000.0)
UNBATCHED = BatchPolicy(max_batch=1, max_wait_us=0.0)
STREAMS = 4
# multi_sim replays a prefix: the A/B there certifies distributed
# bit-identity, not throughput, so it doesn't need the full trace.
MULTI_PREFIX = 1_500
MULTI_PARTS = [1, 2]


def _run_service(backend, policy, trace, graph):
    svc = GraphService(
        backend=backend, policy=policy, streams=STREAMS,
        store_results=False, store_digests=True,
    )
    svc.register_graph(graph)
    for t in range(SPEC.n_tenants):
        svc.add_tenant(f"tenant{t}", max_queue=10_000_000)
    return svc.run_trace(trace)


def _digests(stats):
    return {r.qid: r.digest for r in stats.completed}


def _latency_by_depth(stats, edges=(1, 2, 8, 32, 64, 128)):
    """Mean/p99 latency per coalescing-depth bin — the attribution table."""
    out = {}
    recs = stats.completed
    for lo, hi in zip(edges, edges[1:] + (np.inf,)):
        lat = np.array(
            [r.latency_us for r in recs if lo <= r.batch_size < hi]
        )
        if lat.size:
            label = f"{lo}+" if np.isinf(hi) else f"{lo}-{int(hi) - 1}"
            out[label] = {
                "queries": int(lat.size),
                "mean_us": round(float(lat.mean()), 1),
                "p99_us": round(float(np.percentile(lat, 99)), 1),
            }
    return out


def test_fig9_render(benchmark):
    def build():
        g = gb.generators.rmat(scale=SCALE, edge_factor=8, seed=GRAPH_SEED)
        trace = generate_trace(SPEC, g.nrows, seed=TRACE_SEED)

        # -- cuda_sim: the full-trace throughput/latency A/B -------------
        stats = {}

        def batched_run():
            stats["batched"] = _run_service("cuda_sim", BATCHED, trace, g)
            return stats["batched"]

        def unbatched_run():
            stats["unbatched"] = _run_service("cuda_sim", UNBATCHED, trace, g)
            return stats["unbatched"]

        metrics = {
            "batched": sim_metrics(batched_run),
            "unbatched": sim_metrics(unbatched_run),
        }
        b, u = stats["batched"], stats["unbatched"]

        # Bit identity over the full trace: same completions, same bytes.
        db, du = _digests(b), _digests(u)
        assert set(db) == set(du) and len(db) == SPEC.n_queries
        mismatched = [q for q in db if db[q] != du[q]]
        assert not mismatched, f"{len(mismatched)} digest mismatches"

        # Throughput and latency shape: ≥3x QPS at no-worse p99.
        ratio = b.sustained_qps / u.sustained_qps
        assert ratio >= 3.0, f"batched/unbatched QPS ratio {ratio:.2f} < 3"
        assert b.latency_percentile(99) <= u.latency_percentile(99)

        # -- multi_sim P∈{1,2}: distributed bit-identity on a prefix -----
        prefix = trace[:MULTI_PREFIX]
        multi = {}
        for nparts in MULTI_PARTS:
            be = gb.get_backend("multi_sim")
            be.configure(nparts=nparts, splitter="degree_balanced")
            be.reset()
            mb = _run_service("multi_sim", BATCHED, prefix, g)
            be.reset()
            mu = _run_service("multi_sim", UNBATCHED, prefix, g)
            dmb, dmu = _digests(mb), _digests(mu)
            assert dmb == dmu and len(dmb) == MULTI_PREFIX, (
                f"multi_sim P={nparts}: batched != per-query single-source"
            )
            multi[f"P{nparts}"] = {
                "queries": MULTI_PREFIX,
                "bit_identical": True,
                "qps_ratio": round(mb.sustained_qps / mu.sustained_qps, 3),
            }

        rows = [
            [
                mode,
                round(s.sustained_qps),
                round(s.latency_percentile(50) / 1e3, 1),
                round(s.latency_percentile(99) / 1e3, 1),
                round(
                    sum(k * v for k, v in s.batch_size_histogram.items())
                    / max(sum(s.batch_size_histogram.values()), 1),
                    1,
                ),
            ]
            for mode, s in (("batched", b), ("unbatched", u))
        ]
        fig = format_table(
            f"Figure 9 — serving QPS and latency, batched vs unbatched "
            f"(R-MAT scale {SCALE}, {SPEC.n_queries} queries, "
            f"Zipf s={SPEC.source_skew}, {SPEC.n_tenants} tenants)",
            ["mode", "QPS", "p50_ms", "p99_ms", "mean_batch"],
            rows,
        )
        fig += f"\n\nbatched/unbatched sustained QPS ratio: {ratio:.2f}x"
        save_table("fig9_serving_qps", fig)

        record = {
            "figure": "fig9_serving_qps",
            "scale": SCALE,
            "spec": {
                "qps": SPEC.qps,
                "n_queries": SPEC.n_queries,
                "n_users": SPEC.n_users,
                "n_tenants": SPEC.n_tenants,
                "source_skew": SPEC.source_skew,
                "trace_seed": TRACE_SEED,
            },
            "policy": {
                "max_batch": BATCHED.max_batch,
                "max_wait_us": BATCHED.max_wait_us,
                "streams": STREAMS,
            },
            "qps": {
                "batched": round(b.sustained_qps, 1),
                "unbatched": round(u.sustained_qps, 1),
                "ratio": round(ratio, 3),
            },
            "latency_us": {
                mode: {
                    "p50": round(s.latency_percentile(50), 1),
                    "p99": round(s.latency_percentile(99), 1),
                }
                for mode, s in (("batched", b), ("unbatched", u))
            },
            "bit_identical": {"cuda_sim": True, "multi_sim": multi},
            "latency_by_depth": _latency_by_depth(b),
            # Deterministic counters (plus the batch-size histograms the
            # conftest sim_metrics hook records) — CI-gated like every
            # other figure.
            "cuda_sim_metrics": metrics,
        }
        save_json("fig9", record)
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
