"""Shared fixtures: small graphs, dense references, backend parametrisation."""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro import sanitizer as _sanitizer

BACKENDS = ["reference", "cpu", "cuda_sim", "multi_sim"]


@pytest.fixture(autouse=True)
def _gbsan_clean():
    """When the suite runs under ``GBSAN=1``, fail any test that trips gbsan.

    The whole tier-1 suite doubles as the sanitizer's zero-false-positive
    corpus: a finding inside a test that passes functionally is either a real
    residency/ordering bug in the stack or a sanitizer bug — both block.
    Tests that *plant* hazards on purpose drain the findings themselves
    before returning (see tests/test_sanitizer.py).
    """
    san = _sanitizer.active()
    if san is None:
        yield
        return
    san.drain()
    yield
    leftovers = san.drain()
    assert not leftovers, "gbsan findings:\n" + "\n".join(
        f"  {f}" for f in leftovers
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the test under each backend.

    ``multi_sim`` runs with two devices and the degree-balanced splitter so
    every shared test also exercises the partitioned path.  Tests that probe
    single-device internals (profiler counters, device residency, reuse
    caches) opt out with ``pytestmark = pytest.mark.no_multi_sim``.
    """
    name = request.param
    if name == "multi_sim":
        if request.node.get_closest_marker("no_multi_sim"):
            pytest.skip("test opts out of the multi_sim backend")
        be = gb.get_backend("multi_sim").configure(
            nparts=2, splitter="degree_balanced"
        )
        be.reset()
        with gb.use_backend(be):
            yield name
        return
    with gb.use_backend(name):
        yield name


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_dense_matrix(rng, nrows, ncols, density=0.3, dtype=np.float64):
    """Dense array with ~density nonzeros (values in [1, 10))."""
    m = rng.uniform(1.0, 10.0, (nrows, ncols))
    m[rng.random((nrows, ncols)) >= density] = 0.0
    return m.astype(dtype)


def random_dense_vector(rng, n, density=0.4, dtype=np.float64):
    v = rng.uniform(1.0, 10.0, n)
    v[rng.random(n) >= density] = 0.0
    return v.astype(dtype)


@pytest.fixture
def small_graph():
    """A fixed 6-vertex directed weighted graph used across tests.

    Edges: 0->1 (1), 0->2 (4), 1->2 (2), 1->3 (7), 2->4 (3), 3->5 (1),
    4->3 (2), 4->5 (5).
    """
    return gb.Matrix.from_lists(
        [0, 0, 1, 1, 2, 3, 4, 4],
        [1, 2, 2, 3, 4, 5, 3, 5],
        [1.0, 4.0, 2.0, 7.0, 3.0, 1.0, 2.0, 5.0],
        6,
        6,
        gb.FP64,
    )


@pytest.fixture
def undirected_graph():
    """A fixed symmetric weighted graph (triangle 0-1-2 plus tail 2-3-4)."""
    rows = [0, 1, 0, 2, 1, 2, 2, 3, 3, 4]
    cols = [1, 0, 2, 0, 2, 1, 3, 2, 4, 3]
    vals = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 1.0, 1.0, 2.0, 2.0]
    return gb.Matrix.from_lists(rows, cols, vals, 5, 5, gb.FP64)


def assert_vector_equals_dense(vec, dense, fill=0):
    """Vector's dense form matches a NumPy array (implicit == fill)."""
    np.testing.assert_allclose(vec.to_dense(fill), dense, rtol=1e-12, atol=1e-12)


def assert_matrix_equals_dense(mat, dense, fill=0):
    np.testing.assert_allclose(mat.to_dense(fill), dense, rtol=1e-12, atol=1e-12)
