"""Frontend Vector and Matrix objects: construction, mutation, export."""

import numpy as np
import pytest

import repro as gb
from repro.core.operators import PLUS


class TestVectorObject:
    def test_sparse_ctor(self):
        v = gb.Vector.sparse(gb.FP64, 10)
        assert v.size == 10 and v.nvals == 0 and v.type is gb.FP64

    def test_from_lists_infer_type(self):
        v = gb.Vector.from_lists([0], [1.5], 3)
        assert v.type is gb.FP64

    def test_from_lists_int_type(self):
        v = gb.Vector.from_lists([0], [1], 3)
        assert v.type.is_integral

    def test_build_on_empty(self):
        v = gb.Vector.sparse(gb.FP64, 4)
        v.build([3, 1], [3.0, 1.0])
        assert v.to_lists() == ([1, 3], [1.0, 3.0])

    def test_build_on_nonempty_raises(self):
        v = gb.Vector.from_lists([0], [1.0], 3)
        with pytest.raises(gb.OutputNotEmptyError):
            v.build([1], [2.0])

    def test_build_with_dup(self):
        v = gb.Vector.sparse(gb.FP64, 4)
        v.build([1, 1], [1.0, 2.0], dup=PLUS)
        assert v.get(1) == 3.0

    def test_set_get_item(self):
        v = gb.Vector.sparse(gb.FP64, 3)
        v[1] = 5.0
        assert v[1] == 5.0
        assert 1 in v and 0 not in v

    def test_getitem_missing_raises(self):
        v = gb.Vector.sparse(gb.FP64, 3)
        with pytest.raises(gb.EmptyObjectError):
            _ = v[0]

    def test_set_element_overwrites(self):
        v = gb.Vector.from_lists([1], [1.0], 3)
        v.set_element(1, 9.0)
        assert v.get(1) == 9.0 and v.nvals == 1

    def test_set_element_bounds(self):
        v = gb.Vector.sparse(gb.FP64, 3)
        with pytest.raises(gb.IndexOutOfBoundsError):
            v.set_element(3, 1.0)

    def test_remove_element(self):
        v = gb.Vector.from_lists([0, 1], [1.0, 2.0], 3)
        v.remove_element(0)
        assert v.nvals == 1 and 0 not in v
        v.remove_element(2)  # absent: no-op
        assert v.nvals == 1

    def test_clear(self):
        v = gb.Vector.from_lists([0], [1.0], 3)
        v.clear()
        assert v.nvals == 0 and v.size == 3

    def test_dup_independent(self):
        v = gb.Vector.from_lists([0], [1.0], 3)
        d = v.dup()
        d.set_element(0, 9.0)
        assert v.get(0) == 1.0

    def test_resize_shrink_drops(self):
        v = gb.Vector.from_lists([0, 4], [1.0, 5.0], 5)
        v.resize(3)
        assert v.size == 3 and v.nvals == 1

    def test_resize_grow(self):
        v = gb.Vector.from_lists([0], [1.0], 2)
        v.resize(10)
        assert v.size == 10 and v.get(0) == 1.0

    def test_full(self):
        v = gb.Vector.full(2.5, 4)
        assert v.nvals == 4 and v.get(3) == 2.5

    def test_equality(self):
        a = gb.Vector.from_lists([0], [1.0], 3)
        b = gb.Vector.from_lists([0], [1.0], 3)
        c = gb.Vector.from_lists([1], [1.0], 3)
        assert a == b and a != c

    def test_len(self):
        assert len(gb.Vector.sparse(gb.FP64, 7)) == 7


class TestMatrixObject:
    def test_sparse_ctor(self):
        m = gb.Matrix.sparse(gb.INT64, 3, 4)
        assert m.shape == (3, 4) and m.nvals == 0

    def test_identity(self):
        m = gb.Matrix.identity(3, value=2.0)
        assert m.nvals == 3 and m.get(1, 1) == 2.0 and m.get(0, 1) is None

    def test_from_diag(self):
        m = gb.Matrix.from_diag(np.array([1.0, 0.0, 3.0]))
        assert m.nvals == 2 and m.get(2, 2) == 3.0

    def test_build(self):
        m = gb.Matrix.sparse(gb.FP64, 2, 2)
        m.build([0, 1], [1, 0], [1.0, 2.0])
        assert m.get(0, 1) == 1.0

    def test_build_nonempty_raises(self):
        m = gb.Matrix.identity(2)
        with pytest.raises(gb.OutputNotEmptyError):
            m.build([0], [0], [1.0])

    def test_setitem_getitem(self):
        m = gb.Matrix.sparse(gb.FP64, 2, 2)
        m[0, 1] = 5.0
        assert m[0, 1] == 5.0
        assert (0, 1) in m and (1, 0) not in m

    def test_getitem_missing_raises(self):
        m = gb.Matrix.sparse(gb.FP64, 2, 2)
        with pytest.raises(gb.EmptyObjectError):
            _ = m[0, 0]

    def test_set_element_inserts_and_overwrites(self):
        m = gb.Matrix.sparse(gb.FP64, 3, 3)
        m.set_element(1, 1, 4.0)
        m.set_element(1, 0, 3.0)
        m.set_element(1, 1, 5.0)
        assert m.get(1, 1) == 5.0 and m.get(1, 0) == 3.0 and m.nvals == 2
        m.container.validate()

    def test_set_element_bounds(self):
        m = gb.Matrix.sparse(gb.FP64, 2, 2)
        with pytest.raises(gb.IndexOutOfBoundsError):
            m.set_element(2, 0, 1.0)

    def test_remove_element(self):
        m = gb.Matrix.from_lists([0, 1], [1, 0], [1.0, 2.0], 2, 2)
        m.remove_element(0, 1)
        assert m.nvals == 1
        m.remove_element(0, 0)  # absent: no-op
        m.container.validate()

    def test_clear(self):
        m = gb.Matrix.identity(3)
        m.clear()
        assert m.nvals == 0 and m.shape == (3, 3)

    def test_dup_independent(self):
        m = gb.Matrix.identity(2)
        d = m.dup()
        d.set_element(0, 1, 9.0)
        assert m.get(0, 1) is None

    def test_to_lists_roundtrip(self):
        m = gb.Matrix.from_lists([1, 0], [0, 1], [2.0, 1.0], 2, 2)
        r, c, v = m.to_lists()
        m2 = gb.Matrix.from_lists(r, c, v, 2, 2)
        assert m == m2

    def test_csc_cache_invalidated_on_mutation(self):
        m = gb.Matrix.from_lists([0], [1], [1.0], 2, 2)
        csc1 = m.csc()
        assert m.csc() is csc1  # cached
        m.set_element(1, 0, 2.0)
        csc2 = m.csc()
        assert csc2 is not csc1
        assert csc2.col(0)[0].size == 1

    def test_row_degrees(self):
        m = gb.Matrix.from_lists([0, 0, 1], [0, 1, 1], [1.0] * 3, 3, 2)
        np.testing.assert_array_equal(m.row_degrees(), [2, 1, 0])

    def test_equality(self):
        a = gb.Matrix.identity(2)
        b = gb.Matrix.identity(2)
        assert a == b
        b.set_element(0, 1, 1.0)
        assert a != b


class TestScalar:
    def test_empty_scalar(self):
        s = gb.Scalar(gb.FP64)
        assert s.is_empty and s.nvals == 0
        with pytest.raises(gb.EmptyObjectError):
            _ = s.value

    def test_set_get_clear(self):
        s = gb.Scalar(gb.INT64)
        s.set(4.9)
        assert s.value == 4  # cast into domain
        s.clear()
        assert s.is_empty

    def test_from_value_infers(self):
        assert gb.Scalar.from_value(2.5).type is gb.FP64
        assert gb.Scalar.from_value(True).type is gb.BOOL

    def test_equality_with_plain_value(self):
        assert gb.Scalar(gb.FP64, 2.0) == 2.0
        assert gb.Scalar(gb.FP64, 2.0) == gb.Scalar(gb.FP64, 2.0)
        assert gb.Scalar(gb.FP64) != 2.0

    def test_bool(self):
        assert bool(gb.Scalar(gb.FP64, 1.0))
        assert not bool(gb.Scalar(gb.FP64, 0.0))
        assert not bool(gb.Scalar(gb.FP64))

    def test_get_default(self):
        assert gb.Scalar(gb.FP64).get(7.0) == 7.0
