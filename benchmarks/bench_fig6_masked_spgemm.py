"""Figure 6 (ablation) — masked vs unmasked SpGEMM for triangle counting.

Design-choice ablation from DESIGN.md: the ``C<L> = L ⊗ L`` kernel behind
triangle counting, run with the mask exploited (partial products filtered
before the sort / hash writes bounded by mask size) versus computed
unmasked and filtered afterwards by the write pipeline.  Shape claims: the
masked path wins on both the measured CPU and the modeled GPU, and the
advantage grows with graph size (the mask is O(nnz) while the unmasked
product is O(flops) ≫ O(nnz) on triangle-rich graphs).
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.algorithms.triangles import lower_triangle
from repro.bench.harness import time_operation
from repro.bench.tables import format_series
from repro.core import operations as ops
from repro.core.descriptor import STRUCTURE_MASK
from repro.core.semiring import PLUS_PAIR

from conftest import bench_backend, save_table

SCALES = [8, 9, 10, 11]


def make_cases(scale):
    g = gb.generators.rmat(scale=scale, edge_factor=12, seed=33)
    l = lower_triangle(g)
    n = g.nrows

    def masked():
        c = gb.Matrix.sparse(gb.INT64, n, n)
        return ops.mxm(c, l, l, PLUS_PAIR, mask=l, desc=STRUCTURE_MASK)

    def unmasked():
        # Same final result: full product, mask applied only at the write
        # pipeline (the backend never sees the mask).
        c = gb.Matrix.sparse(gb.INT64, n, n)
        ops.mxm(c, l, l, PLUS_PAIR)
        out = gb.Matrix.sparse(gb.INT64, n, n)
        from repro.core.operators import IDENTITY

        ops.apply(out, c, IDENTITY, mask=l, desc=STRUCTURE_MASK)
        return out

    return masked, unmasked


_CASES = {s: make_cases(s) for s in SCALES}


@pytest.mark.parametrize("variant", ["masked", "unmasked"])
@pytest.mark.parametrize("scale", SCALES)
def test_fig6_variant(benchmark, variant, scale):
    masked, unmasked = _CASES[scale]
    bench_backend(benchmark, "cpu", masked if variant == "masked" else unmasked, rounds=2)


def test_fig6_results_equal(benchmark):
    def verify():
        for s in SCALES[:2]:
            masked, unmasked = _CASES[s]
            with gb.use_backend("cpu"):
                assert masked() == unmasked()
        return True

    benchmark.pedantic(verify, rounds=1, iterations=1)


def test_fig6_render(benchmark):
    def build():
        cpu = {"masked": [], "unmasked": []}
        sim = {"masked": [], "unmasked": []}
        for s in SCALES:
            masked, unmasked = _CASES[s]
            cpu["masked"].append(time_operation("cpu", masked, repeat=2).seconds)
            cpu["unmasked"].append(time_operation("cpu", unmasked, repeat=2).seconds)
            sim["masked"].append(time_operation("cuda_sim", masked).seconds)
            sim["unmasked"].append(time_operation("cuda_sim", unmasked).seconds)
        fig = format_series(
            "Figure 6 — masked vs unmasked SpGEMM (triangle kernel), CPU wall (s)",
            "scale",
            SCALES,
            cpu,
        )
        fig_sim = format_series(
            "Figure 6b — same, simulated GPU device time (s)",
            "scale",
            SCALES,
            sim,
        )
        save_table("fig6_masked_spgemm", fig + "\n\n" + fig_sim)
        # Shape: masked clearly wins on the modeled GPU (atomic writes are
        # what the mask eliminates); on the CPU the expansion dominates, so
        # require only no-regression within measurement noise.
        assert sim["masked"][-1] < 0.7 * sim["unmasked"][-1]
        assert cpu["masked"][-1] <= 1.15 * cpu["unmasked"][-1]
        return fig

    benchmark.pedantic(build, rounds=1, iterations=1)
