"""The multi-device (partitioned) simulated backend.

``multi_sim`` runs every GraphBLAS operation across ``P`` simulated devices:
matrices are sharded into contiguous block-rows (equal-rows or
degree-balanced splitters), each shard is serviced by its own
:class:`~repro.backends.cuda_sim.backend.CudaSimBackend` executor bound to
its own :class:`~repro.gpu.device.Device`, and inter-device data movement is
priced by the :class:`~repro.distributed.comm.CommModel` of a configurable
link :class:`~repro.distributed.topology.Topology`.

Execution semantics (see ``docs/distributed.md`` for the full accounting):

- **P = 1 delegates.**  Every operation short-circuits to the single
  executor, so a one-device cluster is bit- and counter-identical to
  ``cuda_sim`` by construction.
- **Pull products are decomposed by row** — each device computes its owned
  output rows from a replicated input vector; the concatenation is
  bit-identical to the unsharded kernel for *any* semiring.
- **Push products are decomposed by frontier ownership** — each device
  expands its slice of the frontier into a full-size partial, partials are
  exchanged (``frontier_exchange``) and folded by the owners with the
  additive monoid.  Sharded folding is only bit-exact for exact additive
  monoids (MIN/MAX/logical/bitwise, or any monoid over an integer or
  boolean domain), so ``auto`` direction demotes push → pull for inexact
  float adds; the direction *choice* itself is made on the full operands
  with the same :func:`~repro.backends.cpu.spmv.choose_direction` call the
  single-device backend makes.
- **Results are sliced-resident**: each device holds its owned slice.
  Consuming a sliced container as a replicated operand (e.g. the PageRank
  rank vector feeding the next SpMV) charges an ``allgather`` — the
  per-iteration replication cost that dominates multi-GPU GraphBLAS scaling.

The frontend never sees any of this: algorithms written against
``repro.core`` run unchanged, and ``BFS``/``PageRank``/``delta-stepping``
produce bit-identical results on 1–8 simulated devices.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ...containers.csr import CSRMatrix
from ...containers.sparsevec import SparseVector
from ...core.descriptor import DEFAULT, Descriptor
from ...core.monoid import Monoid
from ...core.operators import BinaryOp, UnaryOp
from ...core.semiring import Semiring
from ...distributed.cluster import ClusterKernelGraph, SimCluster
from ...distributed.partition import (
    PartitionedCSR,
    PartitionedVector,
    SPLITTERS,
    _slice_rows,
    concat_row_blocks,
    equal_rows_splitters,
)
from ...distributed.topology import DGX_NVLINK, Topology
from ...exceptions import InvalidValueError
from ...gpu import reuse
from ...gpu.device import Device, DeviceProperties, K40
from ...gpu.kernel import LaunchConfig, charge_transfer, launch
from ...sanitizer import runtime as _gbsan
from ..base import Backend
from ..cpu.ewise import ewise_add_vec, ewise_mult_vec
from ..cpu.reduce_apply import apply_mat, apply_vec, reduce_mat_vector
from ..cpu.spmv import choose_direction, mask_pull_rows
from ..cuda_sim.kernels import (
    APPLY_M,
    APPLY_V,
    EWISE_ADD_M,
    EWISE_ADD_V,
    EWISE_APPLY_FUSED_M,
    EWISE_APPLY_FUSED_V,
    EWISE_MULT_M,
    EWISE_MULT_V,
    GATHER,
    REDUCE_ROWS,
    REDUCE_TREE,
    SCATTER_ASSIGN,
    SELECT_COMPACT,
    SPGEMM_HASH,
    SPGEMM_HASH_MASKED,
    SPMSV_PUSH,
    SPMV_CSR_VECTOR,
    _frontier_assign,
    laned,
    pull_lane,
    push_lane,
    spgemm_lane,
)
from .kernels import PARTIAL_MERGE, TRANSPOSE_SHARD

__all__ = ["MultiSimBackend"]


def _noop() -> None:
    return None


#: Additive monoids whose sharded fold is bitwise-equal to the unsharded
#: reduction regardless of domain: selections and lattice/logical ops have
#: no rounding, so associativity holds exactly.
_EXACT_ADDS = frozenset({"MIN", "MAX", "LOR", "LAND", "BOR", "BAND", "ANY"})


class MultiSimBackend(Backend):
    """GraphBLAS kernels sharded across P simulated devices."""

    name = "multi_sim"

    def __init__(
        self,
        nparts: int = 2,
        splitter: str = "equal_rows",
        topology: Topology = DGX_NVLINK,
        props: DeviceProperties = K40,
    ) -> None:
        self.nparts = int(nparts)
        self.splitter = splitter
        self.topology = topology
        self.props = props
        self._cluster = SimCluster(self.nparts, props, topology)
        # Partition memos, keyed by id(matrix): (ref, version, PartitionedCSR).
        self._parts: dict = {}
        self._tparts: dict = {}
        # Containers whose devices hold only their owned slice: id -> (ref, version).
        self._sliced: dict = {}

    # ------------------------------------------------------------------
    # Configuration / introspection
    # ------------------------------------------------------------------

    def configure(
        self,
        nparts: Optional[int] = None,
        splitter: Optional[str] = None,
        topology: Optional[Topology] = None,
        props: Optional[DeviceProperties] = None,
    ) -> "MultiSimBackend":
        """Rebuild the cluster with new parameters; drops all device state."""
        if nparts is not None:
            if nparts < 1:
                raise InvalidValueError(f"nparts must be >= 1, got {nparts}")
            self.nparts = int(nparts)
        if splitter is not None:
            if splitter not in SPLITTERS:
                raise InvalidValueError(
                    f"unknown splitter {splitter!r}; known: {SPLITTERS}"
                )
            self.splitter = splitter
        if topology is not None:
            self.topology = topology
        if props is not None:
            self.props = props
        self._cluster = SimCluster(self.nparts, self.props, self.topology)
        self._parts.clear()
        self._tparts.clear()
        self._sliced.clear()
        return self

    @property
    def cluster(self) -> SimCluster:
        return self._cluster

    def metrics(self) -> dict:
        """Cluster-wide counters (launches, bytes, comm, makespan)."""
        return self._cluster.metrics()

    def reset(self) -> None:
        """Fresh clocks/profilers/residency on every device + comm counters."""
        self._cluster.reset()
        self._sliced.clear()

    def evict_all(self) -> None:
        """Forget device residency (benchmark repetition boundary)."""
        for ex in self._cluster.executors:
            ex.evict_all()
        self._sliced.clear()

    def _ex(self, p: int):
        return self._cluster.executors[p]

    def _dev(self, p: int) -> Device:
        return self._cluster.devices[p]

    # ------------------------------------------------------------------
    # Residency: replicated vs sliced
    # ------------------------------------------------------------------

    def _is_sliced(self, c) -> bool:
        hit = self._sliced.get(id(c))
        return hit is not None and hit[0] is c and hit[1] == c.version

    def _mark_sliced(self, c) -> None:
        if len(self._sliced) >= 1024:
            self._sliced = {
                k: v for k, v in self._sliced.items() if v[0].version == v[1]
            }
        self._sliced[id(c)] = (c, c.version)
        san = _gbsan.ACTIVE
        if san is not None:
            # Each device holds its owned slice: give every device a derived
            # shadow entry so shard-wise reads pass the residency checker.
            for p in range(self.nparts):
                san.note_derived(self._dev(p), c, c)

    def _ensure_replicated(self, c) -> None:
        """Every device must hold the full container; charge what that takes."""
        if self._is_sliced(c):
            # Devices hold disjoint slices: gather the full container
            # everywhere over the peer links.
            del self._sliced[id(c)]
            dt = self._cluster.comm.allgather(float(c.nbytes))
            self._cluster.charge_comm("allgather", dt, float(c.nbytes))
            for ex in self._cluster.executors:
                ex._mark_resident(c)
            return
        ex0 = self._ex(0)
        if ex0._resident.is_clean(c):
            for ex in self._cluster.executors:
                ex._mark_resident(c)  # LRU touch on every replica
            return
        # Fresh host data: one PCIe upload to device 0, then a peer broadcast.
        ex0._ensure_resident(c)
        dt = self._cluster.comm.broadcast(float(c.nbytes))
        self._cluster.charge_comm("broadcast", dt, float(c.nbytes))
        for ex in self._cluster.executors[1:]:
            ex._mark_resident(c)

    def _ensure_available(self, c) -> None:
        """Container consumable shard-wise: sliced residency is sufficient."""
        if self._is_sliced(c):
            # The sliced claim is version-current, but the shadow slot is
            # shared with any *replicated* copy of ``c`` — if that copy was
            # since evicted, the slot reads as freed even though the devices
            # still hold their owned slices (partition caches).  Re-assert
            # the derived per-device entries so shard-wise reads check
            # against the slices, not the dead replica.
            san = _gbsan.ACTIVE
            if san is not None:
                for p in range(self.nparts):
                    san.note_derived(self._dev(p), c, c)
            return
        self._ensure_replicated(c)

    def note_result(self, container) -> None:
        """Frontend write-pipeline output: devices hold their owned slices."""
        if self.nparts == 1:
            self._ex(0).note_result(container)
            return
        self._mark_sliced(container)

    def download(self, container) -> Any:
        """Model the D2H copy-out; sliced results stream from every device."""
        if self.nparts == 1:
            return self._ex(0).download(container)
        if self._is_sliced(container):
            per = int(container.nbytes / self.nparts)
            for p in range(self.nparts):
                charge_transfer(per, "d2h", device=self._dev(p), container=container)
        else:
            charge_transfer(
                container.nbytes, "d2h", device=self._dev(0), container=container
            )
        return container

    def kernel_graph(self, name: str):
        """One capture/replay graph per device, entered as a single scope."""
        if self.nparts == 1:
            return self._ex(0).kernel_graph(name)
        return ClusterKernelGraph(name, self._cluster, enabled=reuse.graphs_enabled())

    # ------------------------------------------------------------------
    # Partition caches
    # ------------------------------------------------------------------

    def _row_parts(self, a: CSRMatrix) -> PartitionedCSR:
        """Row-sharded view of ``a``, with each shard resident on its device."""
        hit = self._parts.get(id(a))
        if hit is not None and hit[0] is a and hit[1] == a.version:
            part = hit[2]
        else:
            part = PartitionedCSR(a, self.nparts, self.splitter)
            self._parts[id(a)] = (a, a.version, part)
        sliced = self._is_sliced(a)
        for ex, shard in zip(self._cluster.executors, part.shards):
            if sliced:
                ex._mark_resident(shard)  # produced on-device; no upload
            else:
                ex._ensure_resident(shard)  # 1/P of the matrix per device
        return part

    def _col_parts(self, a: CSRMatrix) -> PartitionedCSR:
        """Row-sharded Aᵀ for push-mxv / pull-vxm, built at most once per version.

        The transpose itself is the host-memoised ``cached_transpose`` (one
        counting sort per matrix version, shared with every other consumer);
        the *distributed* cost charged here is each device sorting its edge
        block plus one all-to-all shuffling edges to their new owners.  Like
        the single-device aux builds, the charges land outside any capturing
        graph so iteration signatures stay stable.
        """
        hit = self._tparts.get(id(a))
        if hit is not None and hit[0] is a and hit[1] == a.version:
            part = hit[2]
            for ex, shard in zip(self._cluster.executors, part.shards):
                ex._mark_resident(shard)
            return part
        ta = a.cached_transpose()
        part = PartitionedCSR(ta, self.nparts, self.splitter)
        for ex, shard in zip(self._cluster.executors, part.shards):
            # The shard materialises on its device as the sort runs; mark
            # residency first so the pricing launch reads a known buffer.
            ex._mark_resident(shard)
        for p, shard in enumerate(part.shards):
            if shard.nvals:
                self._launch_uncaptured(
                    TRANSPOSE_SHARD, LaunchConfig.cover(shard.nvals), shard, p=p
                )
        dt = self._cluster.comm.all_to_all(float(a.nbytes))
        self._cluster.charge_comm("all_to_all", dt, float(a.nbytes))
        for ex, shard in zip(self._cluster.executors, part.shards):
            ex._mark_resident(shard)
        if reuse.aux_cache_enabled():
            self._tparts[id(a)] = (a, a.version, part)
        return part

    def _launch_uncaptured(self, kernel, cfg, *args, p: int):
        dev = self._dev(p)
        saved, dev.active_graph = dev.active_graph, None
        try:
            return launch(kernel, cfg, *args, device=dev)
        finally:
            dev.active_graph = saved

    # ------------------------------------------------------------------
    # Shared product machinery
    # ------------------------------------------------------------------

    def _exact_add(self, semiring: Semiring, out_t) -> bool:
        if semiring.add.op.name in _EXACT_ADDS:
            return True
        return not out_t.is_floating

    def _push_product(
        self, parts: PartitionedCSR, u: SparseVector, semiring, out_t, flip, mask, desc
    ) -> SparseVector:
        """Sharded push: local expansions → sparse exchange → owner folds."""
        n_out = parts.ncols
        uv = PartitionedVector(u, parts.splitters)
        san = _gbsan.ACTIVE
        partials, send = [], []
        for p, shard in enumerate(parts.shards):
            ush = uv.shard(p)
            if shard.nvals == 0 or ush.nvals == 0:
                send.append(0.0)
                continue
            if san is not None:
                san.note_derived(self._dev(p), ush, u)
            # Each shard re-bins its own frontier slice: a degree-balanced
            # split can still leave one device holding a mega-hub.
            t_p = launch(
                laned(SPMSV_PUSH, push_lane(shard, ush), "scalar"),
                LaunchConfig.cover(max(ush.nvals, 1) * 32),
                shard,
                ush,
                semiring,
                out_t,
                flip,
                mask,
                desc,
                device=self._dev(p),
            )
            partials.append(t_p)
            send.append(float(t_p.nbytes))
        dt = self._cluster.comm.frontier_exchange(send)
        self._cluster.charge_comm("frontier_exchange", dt, float(sum(send)))
        if not partials:
            return SparseVector.empty(n_out, out_t)
        out = partials[0]
        for t_p in partials[1:]:
            out = ewise_add_vec(out, t_p, semiring.add.op)
        total = sum(t_p.nvals for t_p in partials)
        per = max(float(total) / self.nparts, 1.0)
        for p in range(self.nparts):
            launch(
                PARTIAL_MERGE,
                LaunchConfig.cover(int(per)),
                per,
                out_t.nbytes,
                device=self._dev(p),
            )
        if out.type is not out_t:
            out = SparseVector(
                out.size, out.indices, out.values.astype(out_t.dtype, copy=False), out_t
            )
        return out

    def _pull_product(
        self, parts: PartitionedCSR, u: SparseVector, semiring, out_t, flip, rows
    ) -> SparseVector:
        """Sharded pull: each device gathers its owned output rows."""
        shards_out = []
        for p, shard in enumerate(parts.shards):
            lo, hi = parts.shard_range(p)
            if rows is None:
                local_rows = None
                nloc = shard.nrows
            else:
                s, e = np.searchsorted(rows, (lo, hi))  # gbsan: ok(uncharged-numpy) -- O(log n) shard-boundary lookup, not device work
                local_rows = (rows[s:e] - lo).astype(np.int64)
                nloc = int(local_rows.size)
            if shard.nvals == 0 or u.nvals == 0 or nloc == 0:
                shards_out.append(SparseVector.empty(shard.nrows, out_t))
                continue
            # Shard-local lane choice from the shard's own degree stats.
            t_p = launch(
                laned(SPMV_CSR_VECTOR, pull_lane(shard, local_rows), "vector"),
                LaunchConfig.cover(max(nloc, 1) * 32),
                shard,
                u,
                semiring,
                out_t,
                flip,
                local_rows,
                device=self._dev(p),
            )
            shards_out.append(t_p)
        return PartitionedVector.reassemble(shards_out, parts.splitters, typ=out_t)

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------

    def mxv(
        self,
        a: CSRMatrix,
        u: SparseVector,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc=None,
    ) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).mxv(a, u, semiring, mask, desc, direction, csc)
        out_t = semiring.result_type(a.type, u.type)
        # Direction is chosen on the FULL operands — identical inputs, hence
        # an identical choice, to the single-device backend.
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            csc is not None,
            push_indptr=csc.indptr if csc is not None else None,
            pull_indptr=a.indptr,
        )
        if d == "push" and not self._exact_add(semiring, out_t):
            d = "pull"
        if mask is not None:
            self._ensure_replicated(mask)
        if d == "push":
            tparts = self._col_parts(a)
            self._ensure_available(u)
            out = self._push_product(tparts, u, semiring, out_t, False, mask, desc)
        else:
            parts = self._row_parts(a)
            self._ensure_replicated(u)
            rows = mask_pull_rows(mask, desc, a.nrows)
            out = self._pull_product(parts, u, semiring, out_t, False, rows)
        self._mark_sliced(out)
        return out

    def vxm(
        self,
        u: SparseVector,
        a: CSRMatrix,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc=None,
    ) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).vxm(u, a, semiring, mask, desc, direction, csc)
        out_t = semiring.result_type(u.type, a.type)
        d = choose_direction(
            a,
            u,
            mask,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push" and not self._exact_add(semiring, out_t):
            d = "pull"
        if mask is not None:
            self._ensure_replicated(mask)
        if d == "push":
            parts = self._row_parts(a)
            self._ensure_available(u)
            out = self._push_product(parts, u, semiring, out_t, True, mask, desc)
        else:
            tparts = self._col_parts(a)
            self._ensure_replicated(u)
            rows = mask_pull_rows(mask, desc, a.ncols)
            out = self._pull_product(tparts, u, semiring, out_t, True, rows)
        self._mark_sliced(out)
        return out

    def mxm(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        semiring: Semiring,
        mask: Optional[CSRMatrix] = None,
        desc: Descriptor = DEFAULT,
    ) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).mxm(a, b, semiring, mask, desc)
        parts = self._row_parts(a)
        self._ensure_replicated(b)
        out_t = semiring.result_type(a.type, b.type)
        masked = mask is not None and not desc.complement_mask
        if masked:
            from ..cpu.spgemm import mask_keys_for

            self._ensure_replicated(mask)
        blocks = []
        for p, shard in enumerate(parts.shards):
            lo, hi = parts.shard_range(p)
            if shard.nvals == 0 or b.nvals == 0:
                blocks.append(CSRMatrix.empty(shard.nrows, b.ncols, out_t))
                continue
            cfg = LaunchConfig.cover(max(shard.nrows, 1) * 64)
            lane = spgemm_lane(shard)
            if masked:
                keys = mask_keys_for(_slice_rows(mask, lo, hi), desc)
                blk = launch(
                    laned(SPGEMM_HASH_MASKED, lane, "scalar"),
                    cfg, shard, b, semiring, out_t, keys,
                    device=self._dev(p),
                )
            else:
                blk = launch(
                    laned(SPGEMM_HASH, lane, "scalar"),
                    cfg, shard, b, semiring, out_t, device=self._dev(p),
                )
            blocks.append(blk)
        out = concat_row_blocks(blocks, b.ncols, out_t)
        self._mark_sliced(out)
        return out

    # ------------------------------------------------------------------
    # Elementwise (sliced by equal output ranges; bit-exact elementwise)
    # ------------------------------------------------------------------

    def _ewise_sharded_vec(self, kernel, u, v, kargs, semantic) -> SparseVector:
        self._ensure_available(u)
        self._ensure_available(v)
        sp = equal_rows_splitters(u.size, self.nparts)
        pu, pv = PartitionedVector(u, sp), PartitionedVector(v, sp)
        san = _gbsan.ACTIVE
        outs = []
        for p in range(self.nparts):
            su, sv = pu.shard(p), pv.shard(p)
            outs.append(semantic(su, sv))
            n = su.nvals + sv.nvals
            if n:
                if san is not None:
                    san.note_derived(self._dev(p), su, u)
                    san.note_derived(self._dev(p), sv, v)
                launch(kernel, LaunchConfig.cover(n), su, sv, *kargs, device=self._dev(p))
        out = PartitionedVector.reassemble(outs, sp, typ=outs[0].type)
        self._mark_sliced(out)
        return out

    def _ewise_sharded_mat(self, kernel, a, b, kargs, semantic) -> CSRMatrix:
        self._ensure_available(a)
        self._ensure_available(b)
        sp = equal_rows_splitters(a.nrows, self.nparts)
        san = _gbsan.ACTIVE
        outs = []
        for p in range(self.nparts):
            lo, hi = int(sp[p]), int(sp[p + 1])
            sa, sb = _slice_rows(a, lo, hi), _slice_rows(b, lo, hi)
            outs.append(semantic(sa, sb))
            n = sa.nvals + sb.nvals
            if n:
                if san is not None:
                    san.note_derived(self._dev(p), sa, a)
                    san.note_derived(self._dev(p), sb, b)
                launch(kernel, LaunchConfig.cover(n), sa, sb, *kargs, device=self._dev(p))
        out = concat_row_blocks(outs, a.ncols, outs[0].type)
        self._mark_sliced(out)
        return out

    def ewise_add_vector(self, u, v, op: BinaryOp) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).ewise_add_vector(u, v, op)
        return self._ewise_sharded_vec(
            EWISE_ADD_V, u, v, (op,), lambda su, sv: ewise_add_vec(su, sv, op)
        )

    def ewise_mult_vector(self, u, v, op: BinaryOp) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).ewise_mult_vector(u, v, op)
        return self._ewise_sharded_vec(
            EWISE_MULT_V, u, v, (op,), lambda su, sv: ewise_mult_vec(su, sv, op)
        )

    def ewise_add_matrix(self, a, b, op: BinaryOp) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).ewise_add_matrix(a, b, op)
        from ..cpu.ewise import ewise_add_mat

        return self._ewise_sharded_mat(
            EWISE_ADD_M, a, b, (op,), lambda sa, sb: ewise_add_mat(sa, sb, op)
        )

    def ewise_mult_matrix(self, a, b, op: BinaryOp) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).ewise_mult_matrix(a, b, op)
        from ..cpu.ewise import ewise_mult_mat

        return self._ewise_sharded_mat(
            EWISE_MULT_M, a, b, (op,), lambda sa, sb: ewise_mult_mat(sa, sb, op)
        )

    def ewise_apply_vector(self, u, v, binop, unop, union=True) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).ewise_apply_vector(u, v, binop, unop, union)

        def semantic(su, sv):
            t = ewise_add_vec(su, sv, binop) if union else ewise_mult_vec(su, sv, binop)
            return apply_vec(t, unop)

        return self._ewise_sharded_vec(
            EWISE_APPLY_FUSED_V, u, v, (binop, unop, union), semantic
        )

    def ewise_apply_matrix(self, a, b, binop, unop, union=True) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).ewise_apply_matrix(a, b, binop, unop, union)
        from ..cpu.ewise import ewise_add_mat, ewise_mult_mat

        def semantic(sa, sb):
            t = ewise_add_mat(sa, sb, binop) if union else ewise_mult_mat(sa, sb, binop)
            return apply_mat(t, unop)

        return self._ewise_sharded_mat(
            EWISE_APPLY_FUSED_M, a, b, (binop, unop, union), semantic
        )

    # ------------------------------------------------------------------
    # Fused BFS frontier step
    # ------------------------------------------------------------------

    def frontier_step(
        self,
        levels: SparseVector,
        frontier: SparseVector,
        a: CSRMatrix,
        value: Any,
        semiring: Semiring,
        desc: Descriptor,
        direction: str = "auto",
        csc=None,
    ):
        if self.nparts == 1:
            return self._ex(0).frontier_step(
                levels, frontier, a, value, semiring, desc, direction, csc
            )
        from ...core.accumulate import merge_vector

        out_t = semiring.result_type(frontier.type, a.type)
        d = choose_direction(
            a,
            frontier,
            levels,
            desc,
            direction,
            True,
            push_indptr=a.indptr,
            pull_indptr=csc.indptr if csc is not None else None,
        )
        if d == "push" and not self._exact_add(semiring, out_t):
            d = "pull"
        # Level assign: every device scatters the frontier into its replica
        # of the levels vector (the visited bitmap is replicated; keeping the
        # replicas coherent is what the exchanged frontier pays for).
        new_levels = _frontier_assign(levels, frontier, value)
        nupd = frontier.nvals
        for p in range(self.nparts):
            launch(
                SCATTER_ASSIGN,
                LaunchConfig.cover(max(nupd, 1)),
                float(nupd),
                8,
                device=self._dev(p),
                san_writes=(new_levels,),
            )
        for ex in self._cluster.executors:
            ex._mark_resident(new_levels)
        if d == "push":
            parts = self._row_parts(a)
            self._ensure_available(frontier)
            t = self._push_product(
                parts, frontier, semiring, out_t, True, new_levels, desc
            )
        else:
            tparts = self._col_parts(a)
            self._ensure_replicated(frontier)
            rows = mask_pull_rows(new_levels, desc, a.ncols)
            t = self._pull_product(tparts, frontier, semiring, out_t, True, rows)
        new_frontier = merge_vector(frontier, t, new_levels, None, desc)
        return new_levels, new_frontier

    # ------------------------------------------------------------------
    # Apply / reduce / transpose
    # ------------------------------------------------------------------

    def apply_vector(self, u: SparseVector, op: UnaryOp) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).apply_vector(u, op)
        self._ensure_available(u)
        sp = equal_rows_splitters(u.size, self.nparts)
        pu = PartitionedVector(u, sp)
        san = _gbsan.ACTIVE
        outs = []
        for p in range(self.nparts):
            su = pu.shard(p)
            outs.append(apply_vec(su, op))
            if su.nvals:
                if san is not None:
                    san.note_derived(self._dev(p), su, u)
                launch(APPLY_V, LaunchConfig.cover(su.nvals), su, op, device=self._dev(p))
        out = PartitionedVector.reassemble(outs, sp, typ=op.result_type(u.type))
        self._mark_sliced(out)
        return out

    def apply_matrix(self, a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).apply_matrix(a, op)
        parts = self._row_parts(a)
        outs = []
        for p, shard in enumerate(parts.shards):
            outs.append(apply_mat(shard, op))
            if shard.nvals:
                launch(
                    APPLY_M, LaunchConfig.cover(shard.nvals), shard, op,
                    device=self._dev(p),
                )
        out = concat_row_blocks(outs, a.ncols, op.result_type(a.type))
        self._mark_sliced(out)
        return out

    def reduce_vector_scalar(self, u: SparseVector, monoid: Monoid) -> Any:
        if self.nparts == 1:
            return self._ex(0).reduce_vector_scalar(u, monoid)
        self._ensure_available(u)
        t = monoid.result_type(u.type)
        pu = PartitionedVector(u, equal_rows_splitters(u.size, self.nparts))
        san = _gbsan.ACTIVE
        for p in range(self.nparts):
            sh = pu.shard(p)
            if sh.nvals:
                if san is not None:
                    san.note_derived(self._dev(p), sh, u)
                launch(
                    REDUCE_TREE, LaunchConfig.cover(sh.nvals), sh.values, monoid,
                    u.type, device=self._dev(p), san_reads=(sh,),
                )
        dt = self._cluster.comm.allreduce_scalar(t.nbytes)
        self._cluster.charge_comm("allreduce", dt, float(2 * (self.nparts - 1) * t.nbytes))
        # The value itself is the full-array fold — bit-identical to the
        # single-device REDUCE_TREE semantic; the charges above price the
        # sharded tree + scalar allreduce that produce it.
        return t.cast(monoid.reduce_array(u.values, u.type))

    def reduce_matrix_vector(self, a: CSRMatrix, monoid: Monoid) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).reduce_matrix_vector(a, monoid)
        parts = self._row_parts(a)
        outs = []
        for p, shard in enumerate(parts.shards):
            outs.append(reduce_mat_vector(shard, monoid))
            if shard.nvals:
                launch(
                    REDUCE_ROWS, LaunchConfig.cover(max(shard.nrows, 1) * 32),
                    shard, monoid, device=self._dev(p),
                )
        out = PartitionedVector.reassemble(
            outs, parts.splitters, typ=monoid.result_type(a.type)
        )
        self._mark_sliced(out)
        return out

    def reduce_matrix_scalar(self, a: CSRMatrix, monoid: Monoid) -> Any:
        if self.nparts == 1:
            return self._ex(0).reduce_matrix_scalar(a, monoid)
        parts = self._row_parts(a)
        t = monoid.result_type(a.type)
        for p, shard in enumerate(parts.shards):
            if shard.nvals:
                launch(
                    REDUCE_TREE, LaunchConfig.cover(shard.nvals), shard.values,
                    monoid, a.type, device=self._dev(p), san_reads=(shard,),
                )
        dt = self._cluster.comm.allreduce_scalar(t.nbytes)
        self._cluster.charge_comm("allreduce", dt, float(2 * (self.nparts - 1) * t.nbytes))
        return t.cast(monoid.reduce_array(a.values, a.type))

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).transpose(a)
        parts = self._row_parts(a)
        for p, shard in enumerate(parts.shards):
            if shard.nvals:
                launch(
                    TRANSPOSE_SHARD, LaunchConfig.cover(shard.nvals), shard,
                    device=self._dev(p),
                )
        dt = self._cluster.comm.all_to_all(float(a.nbytes))
        self._cluster.charge_comm("all_to_all", dt, float(a.nbytes))
        out = a.transpose()
        self._mark_sliced(out)
        return out

    # ------------------------------------------------------------------
    # Select / indexed apply / extract / assign accounting
    # ------------------------------------------------------------------

    def _charge_compact(self, kernel, src, n_items: float, item_bytes: int) -> None:
        per = max(float(n_items) / self.nparts, 1.0)
        for p in range(self.nparts):
            launch(
                kernel, LaunchConfig.cover(int(per)), _noop, per, item_bytes,
                device=self._dev(p), san_reads=(src,),
            )

    def select_vector(self, u, op, thunk):
        if self.nparts == 1:
            return self._ex(0).select_vector(u, op, thunk)
        self._ensure_available(u)
        self._charge_compact(SELECT_COMPACT, u, u.nvals, u.type.nbytes)
        out = Backend.select_vector(self, u, op, thunk)
        self._mark_sliced(out)
        return out

    def select_matrix(self, a, op, thunk):
        if self.nparts == 1:
            return self._ex(0).select_matrix(a, op, thunk)
        self._ensure_available(a)
        self._charge_compact(SELECT_COMPACT, a, a.nvals, a.type.nbytes)
        out = Backend.select_matrix(self, a, op, thunk)
        self._mark_sliced(out)
        return out

    def apply_indexop_vector(self, u, op, thunk):
        if self.nparts == 1:
            return self._ex(0).apply_indexop_vector(u, op, thunk)
        self._ensure_available(u)
        self._charge_compact(SELECT_COMPACT, u, u.nvals, u.type.nbytes)
        out = Backend.apply_indexop_vector(self, u, op, thunk)
        self._mark_sliced(out)
        return out

    def apply_indexop_matrix(self, a, op, thunk):
        if self.nparts == 1:
            return self._ex(0).apply_indexop_matrix(a, op, thunk)
        self._ensure_available(a)
        self._charge_compact(SELECT_COMPACT, a, a.nvals, a.type.nbytes)
        out = Backend.apply_indexop_matrix(self, a, op, thunk)
        self._mark_sliced(out)
        return out

    def extract_vector(self, u: SparseVector, idx: np.ndarray) -> SparseVector:
        if self.nparts == 1:
            return self._ex(0).extract_vector(u, idx)
        self._ensure_available(u)
        self._charge_compact(GATHER, u, len(idx), u.type.nbytes)
        out = Backend.extract_vector(self, u, idx)
        self._mark_sliced(out)
        return out

    def extract_matrix(self, a: CSRMatrix, rows: np.ndarray, cols: np.ndarray) -> CSRMatrix:
        if self.nparts == 1:
            return self._ex(0).extract_matrix(a, rows, cols)
        self._ensure_available(a)
        self._charge_compact(GATHER, a, float(len(rows)) * max(len(cols), 1), a.type.nbytes)
        out = Backend.extract_matrix(self, a, rows, cols)
        self._mark_sliced(out)
        return out

    def charge_assign(self, nvals: int, out) -> None:
        if self.nparts == 1:
            return self._ex(0).charge_assign(nvals, out)
        # Assign updates the replicated target on every device.
        for p in range(self.nparts):
            launch(
                SCATTER_ASSIGN, LaunchConfig.cover(max(nvals, 1)), float(nvals), 8,
                device=self._dev(p), san_writes=(out,),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Backend multi_sim P={self.nparts} {self.splitter} "
            f"{self.topology.name}>"
        )
