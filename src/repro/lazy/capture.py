"""Automatic whole-loop capture for lazily flushed kernel sequences.

Iterative algorithms (BFS, PageRank, delta-stepping) flush an identical
node sequence every iteration.  Manual capture (``kernel_graph`` +
``graph.iteration()`` in every algorithm) is gone; instead the flush
computes a structural *signature* of each tape it executes:

- the first time a signature is seen, the flush executes and charges
  normally (the capture iteration);
- every later occurrence runs its launches through a :class:`LoopAgg` —
  semantics execute as always, but charging is deferred and *accumulated
  across iterations*.  When the loop ends (a config barrier, a profiler
  read, a ``use_backend`` exit — any :func:`repro.lazy.schedule.wait`),
  one ``graph_replay[lazy:<name>]`` record is emitted carrying a single
  launch overhead plus the summed busy times of every member kernel.

Signatures are structural: op names, input arities, operator/monoid names
and descriptor flags — never data values, so a BFS frontier changing size
or a PageRank residual shrinking does not break the match, while a
push→pull flip (different params) correctly re-captures.

State is held per :class:`~repro.gpu.device.Device` in a weak-key map so
``reset_device()`` naturally abandons stale captures with the device.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..gpu.costmodel import KernelWork
from ..gpu.graph import REPLAY_PREFIX
from ..gpu.profiler import LaunchRecord
from .ir import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.device import Device
    from ..gpu.kernel import Kernel

__all__ = ["LoopAgg", "close", "discard", "enter", "signature"]

LAZY_REPLAY_PREFIX = REPLAY_PREFIX + "lazy:"


class LoopAgg:
    """Accumulates deferred launches for one repeated flush signature.

    Implements the ``on_launch`` protocol of
    :class:`repro.gpu.graph.KernelGraph` (see ``repro.gpu.kernel.launch``):
    returning True defers the charge to :meth:`commit`, which emits one
    aggregated record for *all* accumulated iterations.
    """

    __slots__ = ("name", "_pending")

    def __init__(self, name: str) -> None:
        self.name = name
        self._pending: List[Tuple[str, float, KernelWork]] = []

    def on_launch(self, kernel: "Kernel", work: KernelWork, dev: "Device") -> bool:
        busy = dev.cost_model.kernel_time_us(work) - dev.props.launch_overhead_us
        self._pending.append((kernel.display_name, max(busy, 0.0), work))
        return True

    def commit(self, dev: "Device") -> None:
        pending, self._pending = self._pending, []
        if not pending:
            return
        overhead = dev.props.launch_overhead_us
        dt = overhead + sum(busy for _, busy, _ in pending)
        start = dev.clock_us
        dev.advance(dt)
        dev._profiler.record(
            LaunchRecord(
                name=f"{LAZY_REPLAY_PREFIX}{self.name}]",
                kind="kernel",
                start_us=start,
                duration_us=dt,
                flops=sum(w.flops for _, _, w in pending),
                bytes=sum(w.bytes_total for _, _, w in pending),
                threads=max(w.threads for _, _, w in pending),
                members=tuple(
                    (name, busy, w.flops, w.bytes_total)
                    for name, busy, w in pending
                ),
            )
        )


class _State:
    """Per-device capture bookkeeping."""

    __slots__ = ("seen", "open")

    def __init__(self) -> None:
        # signature -> aggregate name (first occurrence executed plainly).
        self.seen: Dict[Tuple[Any, ...], str] = {}
        # signature -> accumulating aggregate for repeat occurrences.
        self.open: Dict[Tuple[Any, ...], LoopAgg] = {}


_STATES: "weakref.WeakKeyDictionary[Any, _State]" = weakref.WeakKeyDictionary()


def _token(v: Any) -> Any:
    """A value's structural identity for signature purposes.

    Operator-like objects contribute their name, descriptors their flags;
    raw data (ints, floats, arrays — BFS depth, PageRank teleport mass)
    contributes only its *type* so per-iteration value changes do not
    break the loop match.
    """
    if v is None or isinstance(v, (bool, str)):
        return v
    name = getattr(v, "name", None)
    if isinstance(name, str):
        return name
    if hasattr(v, "complement_mask"):
        return (
            "desc",
            v.transpose_a,
            v.transpose_b,
            v.complement_mask,
            v.structural_mask,
            v.replace,
        )
    return type(v).__name__


def _node_sig(node: Node) -> Tuple[Any, ...]:
    keys = tuple(sorted(k for k, v in node.inputs.items() if v is not None))
    params = tuple(sorted((k, _token(v)) for k, v in node.params.items()))
    return (node.op, keys, params)


def signature(nodes: List[Node]) -> Tuple[Any, ...]:
    """Structural signature of one flushed tape."""
    return tuple(_node_sig(n) for n in nodes)


def enter(nodes: List[Node]) -> Optional[LoopAgg]:
    """Route one flush through capture; None means execute/charge plainly.

    The first occurrence of a signature is the capture iteration; repeats
    return the (possibly already accumulating) aggregate for it.
    """
    from ..gpu.device import get_device

    dev = get_device()
    state = _STATES.get(dev)
    if state is None:
        state = _STATES[dev] = _State()
    sig = signature(nodes)
    agg = state.open.get(sig)
    if agg is not None:
        return agg
    name = state.seen.get(sig)
    if name is not None:
        agg = LoopAgg(name)
        state.open[sig] = agg
        return agg
    state.seen[sig] = f"{nodes[0].op}x{len(nodes)}"
    return None


def close(dev: "Device") -> None:
    """Commit and clear every open aggregate (loop-exit barrier)."""
    state = _STATES.get(dev)
    if state is None or not state.open:
        return
    open_aggs, state.open = state.open, {}
    for agg in open_aggs.values():
        agg.commit(dev)


def discard(dev: "Device") -> None:
    """Drop all capture state without charging (device reset)."""
    _STATES.pop(dev, None)
