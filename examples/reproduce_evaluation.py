#!/usr/bin/env python
"""One-shot driver: regenerate every table and figure of the evaluation.

Runs the benchmark suite (the per-experiment files under ``benchmarks/``),
collects the rendered tables from ``benchmarks/results/`` and concatenates
them into ``benchmarks/results/REPORT.txt`` — the full reconstructed
evaluation in one file.

Run:  python examples/reproduce_evaluation.py [--quick]

``--quick`` runs only the render tests (one measurement pass per
experiment) and skips the per-cell pytest-benchmark statistics.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

EXPERIMENTS = [
    "bench_table1_primitives.py",
    "bench_table2_algorithms.py",
    "bench_table3_costmodel_ablation.py",
    "bench_table4_bfs_mteps.py",
    "bench_table5_device_generations.py",
    "bench_fig1_mxv_scaling.py",
    "bench_fig2_bfs_scaling.py",
    "bench_fig3_mxm_scaling.py",
    "bench_fig4_speedup.py",
    "bench_fig5_push_pull.py",
    "bench_fig6_masked_spgemm.py",
    "bench_fig7_delta_sweep.py",
]


def main() -> int:
    quick = "--quick" in sys.argv
    targets = []
    for exp in EXPERIMENTS:
        # e.g. bench_table1_primitives.py -> test_table1_render
        short = exp.removeprefix("bench_").split("_")[0]
        targets.append(
            f"benchmarks/{exp}::test_{short}_render" if quick else f"benchmarks/{exp}"
        )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "--benchmark-only",
        "-q",
    ]
    print("running:", " ".join(cmd))
    rc = subprocess.call(cmd, cwd=REPO)
    if rc != 0:
        print("\nbenchmark suite reported failures — see output above")

    # Stitch the report together regardless (partial results still useful).
    parts = []
    for name in sorted(RESULTS.glob("*.txt")) if RESULTS.exists() else []:
        if name.name == "REPORT.txt":
            continue
        parts.append(name.read_text().rstrip())
    if parts:
        report = RESULTS / "REPORT.txt"
        report.write_text("\n\n\n".join(parts) + "\n")
        print(f"\nfull evaluation written to {report}")
        print(f"  ({len(parts)} tables/figures)")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
