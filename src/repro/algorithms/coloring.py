"""Greedy graph coloring by iterated maximal independent sets.

The Jones–Plassmann-style GraphBLAS formulation: peel one MIS from the
remaining graph per round and give it the next color.  Every color class is
independent by construction, and every vertex is colored when the loop
drains; the number of colors is within the usual greedy bounds (≤ Δ+1 in
expectation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import operations as ops
from ..core.assign import assign_scalar
from ..core.descriptor import Descriptor
from ..core.matrix import Matrix
from ..core.operators import IDENTITY, LAND
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import BOOL, INT64
from .mis import mis

__all__ = ["greedy_color", "verify_coloring"]

_NOT_IN_MASK = Descriptor(complement_mask=True, structural_mask=True, replace=True)


def _induced_subgraph(g: Matrix, keep: Vector) -> Matrix:
    """Adjacency restricted to the ``keep`` vertex set (same dimensions)."""
    idx = keep.indices_array()
    sub = Matrix.sparse(g.type, g.nrows, g.ncols)
    # Keep entries whose row and column both survive: two masked selects.
    cc = g.container
    rows = np.repeat(np.arange(g.nrows, dtype=np.int64), cc.row_degrees())
    alive = np.zeros(g.nrows, dtype=bool)
    alive[idx] = True
    hold = alive[rows] & alive[cc.indices]
    return Matrix.from_lists(
        rows[hold], cc.indices[hold], cc.values[hold], g.nrows, g.ncols, g.type
    )


def greedy_color(g: Matrix, seed: Optional[int] = None, max_colors: int = 0) -> Vector:
    """Color assignment (dense INT64, colors numbered from 0).

    ``g`` must be symmetric.  Deterministic for a fixed ``seed``.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    colors = Vector.sparse(INT64, n)
    remaining = Vector.full(True, n, BOOL)
    sub = g
    color = 0
    limit = max_colors if max_colors > 0 else n + 1
    rng = np.random.default_rng(seed)
    while remaining.nvals and color < limit:
        layer = mis(sub, seed=int(rng.integers(1 << 31)))
        # Restrict the MIS to still-uncolored vertices (isolated vertices of
        # the shrinking subgraph are all "independent" there).
        chosen = Vector.sparse(BOOL, n)
        ops.ewise_mult(chosen, layer, remaining, LAND)
        if not chosen.nvals:
            break
        assign_scalar(colors, color, indices=chosen.indices_array())
        nxt = Vector.sparse(BOOL, n)
        ops.apply(nxt, remaining, IDENTITY, mask=chosen, desc=_NOT_IN_MASK)
        remaining = nxt
        sub = _induced_subgraph(g, remaining) if remaining.nvals else sub
        color += 1
    return colors


def verify_coloring(g: Matrix, colors: Vector) -> bool:
    """True iff every vertex is colored and no edge is monochromatic."""
    if colors.nvals != g.nrows:
        return False
    col = colors.to_dense(-1)
    cc = g.container
    rows = np.repeat(np.arange(g.nrows, dtype=np.int64), cc.row_degrees())
    return not np.any(col[rows] == col[cc.indices])
