"""Inter-device link topology.

Each pair of devices is connected by a link of some *class* — NVLink-style
high-bandwidth low-latency peer links inside an island, PCIe-through-host
links between islands.  A :class:`Topology` maps a device pair to its
:class:`LinkSpec` and prices a point-to-point transfer; the collective cost
formulas live in :mod:`.comm`.

The numbers are knobs in the same spirit as
:class:`~repro.gpu.device.DeviceProperties`: NVLink 1.0 (P100 era) moves
~20 GB/s per direction per link (we model a 2-link gang), PCIe gen3 ~10
GB/s with a ~10 µs software round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["LinkSpec", "Topology", "DGX_NVLINK", "PCIE_ONLY"]


@dataclass(frozen=True)
class LinkSpec:
    """One link class: fixed latency plus bandwidth-proportional time."""

    name: str
    latency_us: float
    bandwidth_gbps: float

    def transfer_time_us(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link once."""
        if nbytes <= 0:
            return 0.0
        # bytes / (GB/s) = ns; 1e-3 converts to µs.
        return self.latency_us + float(nbytes) * 1e-3 / self.bandwidth_gbps


NVLINK = LinkSpec("nvlink", latency_us=2.0, bandwidth_gbps=40.0)
PCIE_P2P = LinkSpec("pcie", latency_us=10.0, bandwidth_gbps=10.0)


@dataclass(frozen=True)
class Topology:
    """Pairwise link classes for a P-device cluster.

    Devices are grouped into NVLink islands of ``island`` consecutive
    ranks; pairs inside an island use the ``fast`` spec, pairs across
    islands the ``slow`` spec.  ``island <= 1`` means no peer links at all
    (every pair routes through PCIe).
    """

    name: str = "dgx"
    fast: LinkSpec = NVLINK
    slow: LinkSpec = PCIE_P2P
    island: int = 8

    def link(self, i: int, j: int) -> LinkSpec:
        """The link spec connecting devices ``i`` and ``j``."""
        if i == j:
            # Self-transfers are local copies; model as the fast class with
            # no latency (callers normally never price them).
            return replace(self.fast, latency_us=0.0)
        if self.island > 1 and (i // self.island) == (j // self.island):
            return self.fast
        return self.slow

    def transfer_time_us(self, nbytes: float, i: int, j: int) -> float:
        return self.link(i, j).transfer_time_us(nbytes)

    def worst_link(self, nparts: int) -> LinkSpec:
        """The slowest link class present in a ``nparts``-device ring."""
        if nparts <= 1:
            return self.fast
        if self.island > 1 and nparts <= self.island:
            return self.fast
        return self.slow


#: All devices on one NVLink island (the DGX-style default).
DGX_NVLINK = Topology("dgx", island=8)

#: No peer links: everything crosses the host PCIe switch.
PCIE_ONLY = Topology("pcie", island=1)
