"""Stochastic block model (planted-partition) generator.

The ground-truth workload for community-detection evaluation: ``k`` blocks
of given sizes with intra-block edge probability ``p_in`` and inter-block
probability ``p_out``.  Sampled per block pair with binomial edge counts
(exact in distribution up to duplicate collisions, O(m) not O(n²)).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType
from .common import finalize_edges

__all__ = ["stochastic_block_model"]


def stochastic_block_model(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: Optional[int] = None,
    weighted: bool = False,
    typ: GrBType = FP64,
) -> Matrix:
    """Undirected SBM adjacency with the given block sizes.

    Vertices are numbered block by block (block b occupies the contiguous
    range starting at ``sum(block_sizes[:b])``), so ground-truth labels are
    recoverable from the index alone.
    """
    sizes = [int(s) for s in block_sizes]
    if any(s < 0 for s in sizes):
        raise InvalidValueError(f"negative block size in {sizes}")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise InvalidValueError(f"{name} must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    n = int(offsets[-1])
    rows_parts, cols_parts = [], []
    k = len(sizes)
    for b1 in range(k):
        for b2 in range(b1, k):
            if b1 == b2:
                pairs = sizes[b1] * (sizes[b1] - 1) // 2
                p = p_in
            else:
                pairs = sizes[b1] * sizes[b2]
                p = p_out
            if pairs <= 0 or p <= 0.0:
                continue
            if p >= 0.25:
                # Dense regime: Bernoulli per pair (exact; duplicates from
                # the sparse sampler would visibly undershoot here).
                if b1 == b2:
                    i, j = np.triu_indices(sizes[b1], k=1)
                    i = offsets[b1] + i.astype(np.int64)
                    j = offsets[b1] + j.astype(np.int64)
                else:
                    i, j = np.meshgrid(
                        np.arange(sizes[b1], dtype=np.int64),
                        np.arange(sizes[b2], dtype=np.int64),
                        indexing="ij",
                    )
                    i = offsets[b1] + i.ravel()
                    j = offsets[b2] + j.ravel()
                keep = rng.random(i.size) < p
                rows_parts.append(i[keep])
                cols_parts.append(j[keep])
                continue
            m = rng.binomial(pairs, p)
            if m == 0:
                continue
            r = offsets[b1] + rng.integers(0, sizes[b1], m, dtype=np.int64)
            c = offsets[b2] + rng.integers(0, sizes[b2], m, dtype=np.int64)
            rows_parts.append(r)
            cols_parts.append(c)
    if rows_parts:
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    return finalize_edges(
        n, rows, cols, weighted=weighted, directed=False, typ=typ, seed=seed
    )
