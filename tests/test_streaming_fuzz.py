"""Mutation-program fuzzer plumbing: generator, differential, shrinker."""

import numpy as np
import pytest

from repro.testing.metamorphic import check_incremental_recompute
from repro.testing.programs import (
    MUTATION_OPS,
    Program,
    QUERY_ALGOS,
    generate_mutation_program,
)
from repro.testing.streaming import (
    STREAMING_SMOKE_SPECS,
    execute_streaming,
    run_streaming_differential,
    shrink_streaming,
    write_streaming_repro,
)


class TestMutationPrograms:
    def test_generator_is_deterministic(self):
        a = generate_mutation_program(7)
        b = generate_mutation_program(7)
        assert a.to_dict() == b.to_dict()

    def test_json_roundtrip(self):
        p = generate_mutation_program(11)
        rt = Program.from_dict(p.to_dict())
        assert rt.to_dict() == p.to_dict()

    def test_op_mix_guarantees(self):
        for seed in range(20):
            p = generate_mutation_program(seed)
            kinds = [op["op"] for op in p.ops]
            assert set(kinds) <= set(MUTATION_OPS)
            assert "edge_batch" in kinds, "every program must mutate"
            assert "query" in kinds, "every program must observe"
            for op in p.ops:
                if op["op"] == "query":
                    assert op["algo"] in QUERY_ALGOS

    def test_replay_is_bit_stable_within_spec(self):
        p = generate_mutation_program(3)
        s1, d1 = execute_streaming(p, "reference")
        s2, d2 = execute_streaming(p, "reference")
        assert d1 is None and d2 is None
        # Applied-batch snapshots are plain tuples; compare those directly.
        for a, b in zip(s1, s2):
            if isinstance(a, tuple) and a and a[0] in ("applied", "compacted"):
                assert a == b


class TestStreamingDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_smoke_seeds_agree(self, seed):
        p = generate_mutation_program(seed)
        assert run_streaming_differential(p, STREAMING_SMOKE_SPECS) is None

    def test_incremental_recompute_invariant(self):
        for seed in (0, 5, 9):
            assert check_incremental_recompute(seed) is None


class TestStreamingShrinker:
    def test_shrinks_to_minimal_failing_program(self):
        p = generate_mutation_program(13)
        assert len(p.ops) >= 2

        # Synthetic failure: any program containing a query "fails".
        def still_fails(cand: Program) -> bool:
            return any(op["op"] == "query" for op in cand.ops)

        small = shrink_streaming(p, still_fails)
        assert still_fails(small)
        assert len(small.ops) == 1
        assert small.ops[0]["op"] == "query"

    def test_shrinker_reduces_graph_size(self):
        p = generate_mutation_program(17)
        orig_size = int(p.graph["size"])

        def still_fails(cand: Program) -> bool:
            return True  # everything fails -> shrink as far as candidates go

        small = shrink_streaming(p, still_fails)
        assert int(small.graph["size"]) < orig_size
        assert len(small.ops) == 1

    def test_probe_exceptions_count_as_pass(self):
        p = generate_mutation_program(19)

        def exploding(cand: Program) -> bool:
            raise RuntimeError("probe blew up")

        small = shrink_streaming(p, exploding)
        assert small.to_dict() == p.to_dict()  # nothing shrank, no crash

    def test_repro_file_is_replayable(self, tmp_path):
        p = generate_mutation_program(2)
        path = write_streaming_repro(p, "synthetic divergence", tmp_path)
        assert path.exists()
        ns: dict = {"__name__": "_r"}
        exec(compile(path.read_text(), str(path), "exec"), ns)
        rt = Program.from_dict(ns["PROGRAM"])
        assert rt.to_dict() == p.to_dict()
        # The generated test function replays clean for a passing program.
        test_fn = next(v for k, v in ns.items() if k.startswith("test_"))
        test_fn()
