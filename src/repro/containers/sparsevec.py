"""Sparse vector container.

A sparse vector stores its present indices (strictly increasing) and values.
It is the one-dimensional analogue of :class:`~repro.containers.csr.CSRMatrix`
and is used by every ``mxv``/``vxm``/ewise kernel as well as by algorithm
frontiers (BFS frontiers are sparse vectors, the key GBTL-CUDA idiom).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import IndexOutOfBoundsError, InvalidObjectError, InvalidValueError
from ..types import GrBType, from_dtype
from ..core.operators import BinaryOp

__all__ = ["SparseVector"]


class SparseVector:
    """Canonical sparse vector: sorted unique ``indices`` + ``values``."""

    __slots__ = ("size", "indices", "values", "type", "_version", "_aux")

    def __init__(self, size: int, indices, values, typ: Optional[GrBType] = None):
        self.size = int(size)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if typ is not None:
            values = values.astype(typ.dtype, copy=False)
        self.values = np.ascontiguousarray(values)
        self.type = typ if typ is not None else from_dtype(self.values.dtype)
        self._version = 0
        self._aux: dict = {}

    # ------------------------------------------------------------------
    # Version stamp + auxiliary-structure cache
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped whenever stored data changes."""
        return self._version

    def bump_version(self) -> int:
        """Invalidate every cached auxiliary structure after a mutation."""
        self._version += 1
        self._aux.clear()
        return self._version

    def _cached(self, key: str, build):
        from ..gpu import reuse

        if not reuse.aux_cache_enabled():
            return build()
        hit = self._aux.get(key)
        if hit is None:
            hit = build()
            self._aux[key] = hit
        return hit

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, size: int, typ: GrBType) -> "SparseVector":
        if size < 0:
            raise InvalidValueError(f"negative size {size}")
        return cls(size, np.empty(0, dtype=np.int64), np.empty(0, dtype=typ.dtype), typ)

    @classmethod
    def from_lists(
        cls,
        size: int,
        indices,
        values,
        typ: Optional[GrBType] = None,
        dup: Optional[BinaryOp] = None,
    ) -> "SparseVector":
        """Build from possibly unsorted/duplicated (index, value) pairs."""
        idx = np.ascontiguousarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if typ is not None:
            vals = vals.astype(typ.dtype, copy=False)
        if idx.size != vals.size:
            raise InvalidValueError(
                f"indices and values lengths differ ({idx.size}, {vals.size})"
            )
        if idx.size:
            if idx.min() < 0 or idx.max() >= size:
                raise IndexOutOfBoundsError(f"index outside [0, {size})")
            order = np.argsort(idx, kind="stable")
            idx, vals = idx[order], vals[order]
            dups = idx[1:] == idx[:-1]
            if dups.any():
                if dup is None:
                    raise InvalidValueError(
                        "duplicate indices in build and no dup operator"
                    )
                starts = np.flatnonzero(np.concatenate(([True], ~dups)))
                out_vals = vals[starts].copy()
                counts = np.diff(np.append(starts, idx.size))
                for gi in np.flatnonzero(counts > 1):
                    s = starts[gi]
                    acc = vals[s]
                    for k in range(1, counts[gi]):
                        acc = dup(acc, vals[s + k])
                    out_vals[gi] = acc
                idx, vals = idx[starts], np.asarray(out_vals, dtype=vals.dtype)
        return cls(size, idx, vals, typ)

    @classmethod
    def from_dense(cls, dense: np.ndarray, typ: Optional[GrBType] = None) -> "SparseVector":
        """Build from a 1-D array; zeros become implicit."""
        dense = np.asarray(dense)
        if dense.ndim != 1:
            raise InvalidValueError("from_dense requires a 1-D array")
        idx = np.flatnonzero(dense)
        return cls(dense.size, idx, dense[idx], typ)

    @classmethod
    def full(cls, size: int, value, typ: GrBType) -> "SparseVector":
        """A vector with every position present, all equal to ``value``."""
        return cls(
            size,
            np.arange(size, dtype=np.int64),
            np.full(size, value, dtype=typ.dtype),
            typ,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes

    def get(self, i: int):
        """The stored value at ``i``, or None if implicit."""
        if not 0 <= i < self.size:
            raise IndexOutOfBoundsError(f"index {i} outside [0, {self.size})")
        k = np.searchsorted(self.indices, i)
        if k < self.indices.size and self.indices[k] == i:
            return self.values[k]
        return None

    def iter_entries(self) -> Iterator[Tuple[int, object]]:
        for k in range(self.indices.size):
            yield int(self.indices[k]), self.values[k]

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full(self.size, fill, dtype=self.type.dtype)
        out[self.indices] = self.values
        return out

    def present_mask(self) -> np.ndarray:
        """Dense boolean presence map (cached; treat read-only)."""

        def build():
            m = np.zeros(self.size, dtype=bool)
            m[self.indices] = True
            return m

        return self._cached("present_mask", build)

    def copy(self) -> "SparseVector":
        return SparseVector(self.size, self.indices.copy(), self.values.copy(), self.type)

    def astype(self, typ: GrBType) -> "SparseVector":
        if typ is self.type:
            return self
        return SparseVector(self.size, self.indices, self.values.astype(typ.dtype), typ)

    def validate(self) -> None:
        if self.indices.size != self.values.size:
            raise InvalidObjectError("indices and values lengths differ")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.size:
                raise InvalidObjectError("index out of range")
            if np.any(np.diff(self.indices) <= 0):
                raise InvalidObjectError("indices not strictly increasing")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseVector(size={self.size}, nvals={self.nvals}, {self.type.name})"
