"""Rule 1 plant: a launch of an undeclared-access kernel hiding an operand.

``undeclared_reduce`` passes container payload to a kernel whose
``accesses=`` declares nothing — gbcheck flags the launch site
(``launch-undeclared-access``).  ``declared_reduce`` is the fixed twin:
with ``san_reads=`` present, gbsan can see the access, and launching it
against an unresident container raises ``unresident-read`` at runtime.
"""

from repro.gpu.costmodel import KernelWork
from repro.gpu.kernel import Kernel, LaunchConfig, launch
from repro.sanitizer.access import Access


def _no_declared_access(*args, **kwargs):
    """Charge-only declaration: the launch site must declare operands."""
    return Access()


PLANTED_REDUCE = Kernel(
    "planted_reduce",
    lambda values, *a, **k: float(values.sum()),
    lambda values, *a, **k: KernelWork(
        flops=float(values.size), bytes_read=float(values.nbytes), bytes_written=8.0
    ),
    accesses=_no_declared_access,
)


def undeclared_reduce(c, device):
    # BUG: payload operand with no san_reads= — gbsan sees nothing here.
    return launch(
        PLANTED_REDUCE, LaunchConfig.cover(c.nvals), c.values, device=device
    )


def declared_reduce(c, device):
    # Fixed twin: the declaration is what lets gbsan check residency.
    return launch(
        PLANTED_REDUCE, LaunchConfig.cover(c.nvals), c.values,
        device=device, san_reads=(c,),
    )
