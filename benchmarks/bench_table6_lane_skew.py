"""Table 6 — skew-aware lane selection vs forced single-lane kernels.

Sweeps R-MAT skew (the ``a`` parameter: 0.45 ≈ near-uniform Erdős–Rényi-ish
degrees up to 0.57 = Graph500 default hubs-and-tails) plus a uniform grid,
and times a dense-frontier push SpMV and a full BFS under every lane policy:
forced ``scalar`` (thread-per-row, the seed push kernel), forced ``vector``
(warp-per-row), forced ``merge`` (merge-path equal-work partitions), and
``auto`` (per-launch row binning).

Shape claims:

- on the skewed s13 R-MAT, ``auto`` beats forced thread-per-row by >= 1.5x
  on both the push SpMV and the BFS (the acceptance bar);
- lane selection never changes results: every policy is bit-identical, on
  cuda_sim and on multi_sim at P in {1, 2, 4}, with identical launch
  counts (lanes are a schedule decision, not a kernel sequence change);
- on the uniform grid ``auto`` matches the best single lane to within a
  few percent — binning bookkeeping must not tax uniform graphs.

Emits ``BENCH_table6.json`` with the deterministic cuda_sim counters that
``check_bench_regressions.py`` gates.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.bench.tables import format_table
from repro.core import operations as ops
from repro.core.semiring import PLUS_TIMES
from repro.gpu import loadbalance
from repro.gpu.device import get_device, reset_device
from repro.testing.equivalence import assert_same

from conftest import fresh_device_state, save_json, save_table

LANES = ["scalar", "vector", "merge", "auto"]

# The acceptance graph: Graph500-skew R-MAT at scale 13.
ACCEPT_SCALE = 13
ACCEPT_A = 0.57
AUTO_VS_SCALAR_MIN_SPEEDUP = 1.5

GRAPHS = {
    "rmat_s13_a57": lambda: gb.generators.rmat(
        scale=ACCEPT_SCALE, edge_factor=16, seed=1, a=ACCEPT_A
    ),
    "rmat_s12_a50": lambda: gb.generators.rmat(
        scale=12, edge_factor=16, seed=1, a=0.50, b=0.20, c=0.20
    ),
    "rmat_s12_a45": lambda: gb.generators.rmat(
        scale=12, edge_factor=16, seed=1, a=0.45, b=0.22, c=0.22
    ),
    "grid_64": lambda: gb.generators.grid_2d(64, 64, seed=1),
}

_CACHE = {}


def graph(name):
    if name not in _CACHE:
        _CACHE[name] = GRAPHS[name]()
    return _CACHE[name]


def dense_frontier(n):
    return gb.Vector.full(1.0, n, gb.FP64)


def run_push_spmv(g, lane):
    """One dense-frontier push SpMV under ``lane``; returns (result, us,
    launches, h2d)."""
    fresh_device_state()
    dev = get_device()
    u = dense_frontier(g.nrows)
    ctx = loadbalance.forced(lane)
    with ctx, use_backend("cuda_sim"):
        w = gb.Vector.sparse(gb.FP64, g.nrows)
        ops.mxv(w, g, u, PLUS_TIMES, direction="push")
    prof = dev.profiler
    return w, prof.kernel_time_us, prof.launch_count, prof.h2d_bytes


def run_bfs(g, lane, source=0):
    fresh_device_state()
    dev = get_device()
    with loadbalance.forced(lane), use_backend("cuda_sim"):
        levels = gb.algorithms.bfs_levels(g, source)
    prof = dev.profiler
    return levels, prof.kernel_time_us, prof.launch_count, prof.h2d_bytes


@pytest.mark.parametrize("gname", list(GRAPHS))
@pytest.mark.parametrize("lane", LANES)
def test_table6_push_spmv(benchmark, gname, lane):
    g = graph(gname)
    _, us, launches, _ = run_push_spmv(g, lane)
    benchmark.extra_info["simulated_us"] = round(us, 3)
    benchmark.extra_info["kernel_launches"] = launches
    benchmark.pedantic(
        lambda: run_push_spmv(g, lane), rounds=1, iterations=1
    )


@pytest.mark.parametrize("lane", LANES)
def test_table6_bfs(benchmark, lane):
    g = graph("rmat_s13_a57")
    _, us, launches, _ = run_bfs(g, lane)
    benchmark.extra_info["simulated_us"] = round(us, 3)
    benchmark.extra_info["kernel_launches"] = launches
    benchmark.pedantic(lambda: run_bfs(g, lane), rounds=1, iterations=1)


def test_table6_multi_sim_parity(benchmark):
    """Lane choice is local to each shard and never changes results."""

    def build():
        g = graph("rmat_s13_a57")
        with loadbalance.forced("scalar"), use_backend("cuda_sim"):
            ref = gb.algorithms.bfs_levels(g, 0)
        for nparts in (1, 2, 4):
            backend = get_backend("multi_sim").configure(nparts=nparts)
            # Warm the one-time distributed transpose build (cached across
            # resets) so both measured runs see identical cache state.
            with use_backend("multi_sim"):
                gb.algorithms.bfs_levels(g, 0)
            backend.reset()
            with loadbalance.forced("auto"), use_backend("multi_sim"):
                auto = gb.algorithms.bfs_levels(g, 0)
            auto_launch = backend.metrics()["kernel_launches"]
            backend.reset()
            with loadbalance.forced("scalar"), use_backend("multi_sim"):
                forced_ = gb.algorithms.bfs_levels(g, 0)
            forced_launch = backend.metrics()["kernel_launches"]
            assert_same(auto, ref, exact=True)
            assert_same(forced_, ref, exact=True)
            assert auto_launch == forced_launch, (
                f"P={nparts}: lane policy changed launch count "
                f"({auto_launch} vs {forced_launch})"
            )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_table6_render(benchmark):
    def build():
        rows = []
        times = {}
        metrics = {}
        for gname in GRAPHS:
            g = graph(gname)
            results = {}
            for lane in LANES:
                w, us, launches, h2d = run_push_spmv(g, lane)
                results[lane] = w
                times[(gname, "push_spmv", lane)] = us
                metrics[f"{gname}.push_{lane}"] = {
                    "kernel_launches": launches,
                    "h2d_bytes": round(h2d),
                }
                rows.append([gname, "push_spmv", lane, round(us, 2)])
            # Lane selection is pure scheduling: bit-identical results.
            for lane in LANES[1:]:
                assert_same(results[lane], results["scalar"], exact=True)
        g = graph("rmat_s13_a57")
        bfs_results = {}
        for lane in LANES:
            levels, us, launches, h2d = run_bfs(g, lane)
            bfs_results[lane] = levels
            times[("rmat_s13_a57", "bfs", lane)] = us
            metrics[f"bfs_{lane}"] = {
                "kernel_launches": launches,
                "h2d_bytes": round(h2d),
            }
            rows.append(["rmat_s13_a57", "bfs", lane, round(us, 2)])
        for lane in LANES[1:]:
            assert bfs_results[lane].to_lists() == bfs_results["scalar"].to_lists()

        table = format_table(
            "Table 6 — lane policy vs graph skew: modeled time (µs)",
            ["graph", "op", "lane", "sim time"],
            rows,
        )
        save_table("table6_lane_skew", table)

        # Acceptance: auto >= 1.5x over forced thread-per-row on the
        # skewed graph, for both the single SpMV and the whole BFS.
        push_speedup = (
            times[("rmat_s13_a57", "push_spmv", "scalar")]
            / times[("rmat_s13_a57", "push_spmv", "auto")]
        )
        bfs_speedup = (
            times[("rmat_s13_a57", "bfs", "scalar")]
            / times[("rmat_s13_a57", "bfs", "auto")]
        )
        assert push_speedup >= AUTO_VS_SCALAR_MIN_SPEEDUP, push_speedup
        assert bfs_speedup >= AUTO_VS_SCALAR_MIN_SPEEDUP, bfs_speedup
        # Auto never loses to the native thread-per-row push lane — on any
        # graph — and on the uniform grid it must match the best single
        # lane (the binning bookkeeping stays in the noise when there is
        # no skew to exploit).
        for gname in GRAPHS:
            auto = times[(gname, "push_spmv", "auto")]
            assert auto <= times[(gname, "push_spmv", "scalar")] * 1.05, gname
        grid_best = min(
            times[("grid_64", "push_spmv", lane)] for lane in LANES[:3]
        )
        assert times[("grid_64", "push_spmv", "auto")] <= grid_best * 1.10

        record = {
            "table": "table6_lane_skew",
            "lanes": LANES,
            "graphs": sorted(GRAPHS),
            "simulated_us": {
                f"{g}.{op}.{lane}": round(us, 3)
                for (g, op, lane), us in sorted(times.items())
            },
            "auto_vs_scalar_speedup": {
                "push_spmv_s13": round(push_speedup, 3),
                "bfs_s13": round(bfs_speedup, 3),
            },
            "min_required_speedup": AUTO_VS_SCALAR_MIN_SPEEDUP,
            "cuda_sim_metrics": metrics,
        }
        save_json("table6", record)
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
