"""extract / assign family and transpose / kronecker frontends."""

import numpy as np
import pytest

import repro as gb
from repro.core import operations as ops
from repro.core.assign import assign, assign_col, assign_row, assign_scalar
from repro.core.operators import PLUS, TIMES


class TestExtractVector:
    def test_subset(self, backend):
        u = gb.Vector.from_lists([0, 2, 4], [1.0, 3.0, 5.0], 6)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.extract(w, u, [4, 1, 2])
        # w[k] = u[idx[k]]: w[0]=u[4]=5, w[1]=u[1] absent, w[2]=u[2]=3
        assert w.to_lists() == ([0, 2], [5.0, 3.0])

    def test_all_indices(self, backend):
        u = gb.Vector.from_lists([1], [9.0], 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.extract(w, u, None)
        assert w == u

    def test_repeated_indices(self, backend):
        u = gb.Vector.from_lists([1], [9.0], 3)
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.extract(w, u, [1, 1, 0, 1])
        assert w.to_lists() == ([0, 1, 3], [9.0, 9.0, 9.0])

    def test_out_of_bounds(self, backend):
        u = gb.Vector.sparse(gb.FP64, 3)
        with pytest.raises(gb.IndexOutOfBoundsError):
            ops.extract(gb.Vector.sparse(gb.FP64, 1), u, [3])

    def test_size_mismatch(self, backend):
        u = gb.Vector.sparse(gb.FP64, 3)
        with pytest.raises(gb.DimensionMismatchError):
            ops.extract(gb.Vector.sparse(gb.FP64, 5), u, [0, 1])


class TestExtractMatrix:
    @pytest.fixture
    def a(self):
        return gb.Matrix.from_dense(np.arange(12, dtype=float).reshape(3, 4))

    def test_submatrix(self, backend, a):
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.extract_submatrix(c, a, [2, 0], [1, 3])
        np.testing.assert_array_equal(c.to_dense(), [[9.0, 11.0], [1.0, 3.0]])

    def test_all_rows(self, backend, a):
        c = gb.Matrix.sparse(gb.FP64, 3, 2)
        ops.extract_submatrix(c, a, None, [0, 2])
        np.testing.assert_array_equal(c.to_dense(), a.to_dense()[:, [0, 2]])

    def test_extract_col(self, backend, a):
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.extract_col(w, a, 2)
        np.testing.assert_array_equal(w.to_dense(), [2.0, 6.0, 10.0])

    def test_extract_row(self, backend, a):
        w = gb.Vector.sparse(gb.FP64, 4)
        ops.extract_row(w, a, 1)
        np.testing.assert_array_equal(w.to_dense(), [4.0, 5.0, 6.0, 7.0])

    def test_extract_row_implicit_zero_stays_implicit(self, backend):
        a = gb.Matrix.from_lists([0], [1], [5.0], 2, 3)
        w = gb.Vector.sparse(gb.FP64, 3)
        ops.extract_row(w, a, 0)
        assert w.nvals == 1 and w.get(1) == 5.0


class TestAssignVector:
    def test_vector_into_region(self, backend):
        w = gb.Vector.from_lists([0, 4], [10.0, 40.0], 5)
        u = gb.Vector.from_lists([0, 1], [1.0, 2.0], 2)
        assign(w, u, indices=[1, 2])
        assert w.to_lists() == ([0, 1, 2, 4], [10.0, 1.0, 2.0, 40.0])

    def test_assign_deletes_missing_region_entries(self, backend):
        w = gb.Vector.from_lists([1, 2], [10.0, 20.0], 4)
        u = gb.Vector.from_lists([0], [5.0], 2)  # entry only at region pos 0
        assign(w, u, indices=[1, 2])
        assert w.to_lists() == ([1], [5.0])

    def test_assign_with_accum_keeps_region_entries(self, backend):
        w = gb.Vector.from_lists([1, 2], [10.0, 20.0], 4)
        u = gb.Vector.from_lists([0], [5.0], 2)
        assign(w, u, indices=[1, 2], accum=PLUS)
        assert w.to_lists() == ([1, 2], [15.0, 20.0])

    def test_assign_mask_over_output(self, backend):
        w = gb.Vector.sparse(gb.FP64, 4)
        u = gb.Vector.from_lists([0, 1], [1.0, 2.0], 2)
        mask = gb.Vector.from_lists([2], [True], 4, gb.BOOL)
        assign(w, u, indices=[1, 2], mask=mask)
        assert w.to_lists() == ([2], [2.0])

    def test_assign_scalar_fills_region(self, backend):
        w = gb.Vector.sparse(gb.FP64, 5)
        assign_scalar(w, 7.0, indices=[0, 3])
        assert w.to_lists() == ([0, 3], [7.0, 7.0])

    def test_assign_scalar_all(self, backend):
        w = gb.Vector.sparse(gb.FP64, 3)
        assign_scalar(w, 1.0)
        assert w.nvals == 3

    def test_assign_scalar_accum(self, backend):
        w = gb.Vector.from_lists([0], [1.0], 3)
        assign_scalar(w, 10.0, indices=[0, 1], accum=PLUS)
        assert w.to_lists() == ([0, 1], [11.0, 10.0])

    def test_duplicate_indices_rejected(self, backend):
        w = gb.Vector.sparse(gb.FP64, 4)
        u = gb.Vector.sparse(gb.FP64, 2)
        with pytest.raises(gb.InvalidValueError):
            assign(w, u, indices=[1, 1])

    def test_size_mismatch(self, backend):
        w = gb.Vector.sparse(gb.FP64, 4)
        with pytest.raises(gb.DimensionMismatchError):
            assign(w, gb.Vector.sparse(gb.FP64, 3), indices=[0, 1])


class TestAssignMatrix:
    def test_submatrix_assign(self, backend):
        c = gb.Matrix.sparse(gb.FP64, 3, 3)
        a = gb.Matrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assign(c, a, indices=[0, 2], cols=[1, 2])
        assert c.get(0, 1) == 1.0 and c.get(2, 2) == 4.0
        assert c.nvals == 4

    def test_region_clear_on_assign(self, backend):
        c = gb.Matrix.from_lists([0, 1], [0, 1], [9.0, 8.0], 2, 2)
        a = gb.Matrix.sparse(gb.FP64, 1, 1)  # empty source
        assign(c, a, indices=[0], cols=[0])
        assert (0, 0) not in c and c.get(1, 1) == 8.0

    def test_scalar_region_matrix(self, backend):
        c = gb.Matrix.sparse(gb.FP64, 3, 3)
        assign_scalar(c, 5.0, indices=[0, 1], cols=[2])
        assert c.get(0, 2) == 5.0 and c.get(1, 2) == 5.0 and c.nvals == 2

    def test_assign_row(self, backend):
        c = gb.Matrix.sparse(gb.FP64, 3, 4)
        u = gb.Vector.from_lists([0, 3], [1.0, 4.0], 4)
        assign_row(c, u, 1)
        assert c.get(1, 0) == 1.0 and c.get(1, 3) == 4.0 and c.nvals == 2

    def test_assign_col(self, backend):
        c = gb.Matrix.sparse(gb.FP64, 4, 3)
        u = gb.Vector.from_lists([1, 2], [5.0, 6.0], 4)
        assign_col(c, u, 2)
        assert c.get(1, 2) == 5.0 and c.get(2, 2) == 6.0

    def test_assign_row_replaces_row_entries(self, backend):
        c = gb.Matrix.from_lists([1, 1], [0, 2], [9.0, 9.0], 2, 3)
        u = gb.Vector.from_lists([1], [1.0], 3)
        assign_row(c, u, 1)
        assert c.nvals == 1 and c.get(1, 1) == 1.0


class TestTranspose:
    def test_transpose(self, backend, rng):
        from .conftest import random_dense_matrix

        A = random_dense_matrix(rng, 4, 6)
        c = gb.Matrix.sparse(gb.FP64, 6, 4)
        ops.transpose(c, gb.Matrix.from_dense(A))
        np.testing.assert_array_equal(c.to_dense(), A.T)

    def test_transpose_with_tran_flag_is_identity(self, backend):
        a = gb.Matrix.from_lists([0], [1], [2.0], 2, 2)
        c = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.transpose(c, a, desc=gb.TRANSPOSE_A)
        assert c == a

    def test_transpose_accum(self, backend):
        a = gb.Matrix.from_lists([0], [1], [2.0], 2, 2)
        c = gb.Matrix.from_lists([1], [0], [10.0], 2, 2)
        ops.transpose(c, a, accum=PLUS)
        assert c.get(1, 0) == 12.0


class TestKronecker:
    def test_small_kron(self, backend):
        A = np.array([[1.0, 2.0]])
        B = np.array([[0.0, 3.0], [4.0, 0.0]])
        c = gb.Matrix.sparse(gb.FP64, 2, 4)
        ops.kronecker(c, gb.Matrix.from_dense(A), gb.Matrix.from_dense(B), TIMES)
        np.testing.assert_array_equal(c.to_dense(), np.kron(A, B))

    def test_kron_shape_check(self, backend):
        with pytest.raises(gb.DimensionMismatchError):
            ops.kronecker(
                gb.Matrix.sparse(gb.FP64, 3, 3),
                gb.Matrix.sparse(gb.FP64, 2, 2),
                gb.Matrix.sparse(gb.FP64, 2, 2),
                TIMES,
            )
