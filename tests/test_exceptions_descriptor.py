"""Error hierarchy and descriptor semantics."""

import pytest

import repro as gb
from repro import exceptions as ex
from repro.core.descriptor import (
    COMP_MASK,
    DEFAULT,
    Descriptor,
    REPLACE,
    STRUCTURE_MASK,
    TRANSPOSE_A,
)


class TestHierarchy:
    def test_all_derive_from_graphblas_error(self):
        for cls in (
            ex.ApiError,
            ex.ExecutionError,
            ex.DimensionMismatchError,
            ex.IndexOutOfBoundsError,
            ex.DomainMismatchError,
            ex.EmptyObjectError,
            ex.InvalidValueError,
            ex.InvalidObjectError,
            ex.OutputNotEmptyError,
            ex.NotImplementedInBackendError,
            ex.BackendError,
            ex.DeviceError,
            ex.DeviceOutOfMemoryError,
            ex.InvalidLaunchError,
        ):
            assert issubclass(cls, ex.GraphBLASError)

    def test_api_vs_execution_split(self):
        assert issubclass(ex.DimensionMismatchError, ex.ApiError)
        assert issubclass(ex.DeviceError, ex.ExecutionError)
        assert not issubclass(ex.DeviceError, ex.ApiError)

    def test_pythonic_aliases(self):
        # Callers catching builtin exceptions keep working.
        assert issubclass(ex.IndexOutOfBoundsError, IndexError)
        assert issubclass(ex.InvalidValueError, ValueError)
        assert issubclass(ex.DomainMismatchError, TypeError)
        assert issubclass(ex.NotImplementedInBackendError, NotImplementedError)
        assert issubclass(ex.InvalidLaunchError, ValueError)

    def test_dimension_mismatch_detail(self):
        e = ex.DimensionMismatchError("inner dim", expected=3, actual=4)
        assert "3" in str(e) and "4" in str(e)
        assert e.expected == 3 and e.actual == 4

    def test_oom_payload(self):
        e = ex.DeviceOutOfMemoryError(1000, 10)
        assert e.requested == 1000 and e.free == 10
        assert "1000" in str(e)

    def test_catchable_from_package_root(self):
        with pytest.raises(gb.GraphBLASError):
            gb.Vector.sparse(gb.FP64, 3).set_element(5, 1.0)


class TestDescriptor:
    def test_default_flags(self):
        assert not DEFAULT.transpose_a
        assert not DEFAULT.replace
        assert not DEFAULT.complement_mask
        assert not DEFAULT.structural_mask

    def test_constants(self):
        assert REPLACE.replace
        assert TRANSPOSE_A.transpose_a and not TRANSPOSE_A.transpose_b
        assert COMP_MASK.complement_mask
        assert STRUCTURE_MASK.structural_mask

    def test_with_derives_without_mutation(self):
        d = DEFAULT.with_(replace=True)
        assert d.replace and not DEFAULT.replace

    def test_immutable(self):
        with pytest.raises(Exception):
            DEFAULT.replace = True

    def test_equality_and_hash(self):
        assert Descriptor(replace=True) == REPLACE
        assert hash(Descriptor()) == hash(DEFAULT)

    def test_repr_lists_flags(self):
        assert "default" in repr(DEFAULT)
        r = repr(Descriptor(replace=True, complement_mask=True))
        assert "replace" in r and "comp" in r

    def test_compose_flags(self):
        d = Descriptor(transpose_a=True).with_(complement_mask=True)
        assert d.transpose_a and d.complement_mask
