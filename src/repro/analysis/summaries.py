"""Per-function summaries: payload effects, bumps, forcing points, calls.

A :class:`FunctionSummary` records what one function does to container
payload state, extracted from its AST in a single pass:

* ``payload_reads`` / ``payload_writes`` — names (params or locals) whose
  payload arrays (``.values``/``.indices``/``.indptr``/``.data``) are read
  or stored through, plus reads implied by container methods such as
  ``cached_transpose`` or ``row_degrees``.
* ``stores`` / ``bumps`` — ordered events for the version-bump rule: a
  payload store must be followed by ``bump_version``/``install_arrays`` on
  the same base before the function returns.
* ``forcing_lines`` / ``observations`` — events for the forcing-point rule:
  reads of raw container state (``._container``, ``install_arrays``) must be
  dominated by a force/sync/settle.
* ``calls`` — resolvable call sites with name-mapped arguments, which the
  interprocedural fixpoint (:func:`propagate_effects`) uses to push callee
  effects back into callers.

Locals are classified: *fresh* (bound from a constructor/function call —
stores into them precede the container's first version and need no bump),
*param aliases*, or *external* (bound from attribute loads — these hold
live containers and are held to the same rules as params).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .loader import Module, Program

__all__ = [
    "PAYLOAD_ATTRS",
    "CONTAINER_READ_METHODS",
    "BUMP_METHODS",
    "FORCING_CALLS",
    "FORCING_NAMES",
    "FORCING_PROPERTIES",
    "CallEvent",
    "FunctionSummary",
    "summarize_function",
    "summarize_lambda",
    "build_summaries",
    "propagate_effects",
]

#: Container payload attributes (mirrors the syntactic lint).
PAYLOAD_ATTRS = frozenset({"values", "indices", "indptr", "data"})

#: Container methods whose call implies reading the payload arrays.
CONTAINER_READ_METHODS = frozenset(
    {
        "cached_transpose",
        "transpose",
        "row_degrees",
        "in_degrees",
        "row_nnz_max",
        "row",
        "get",
        "to_coo",
        "nnz_per_row",
    }
)

#: Methods that advance the container version (discharge a payload store).
BUMP_METHODS = frozenset({"bump_version", "install_arrays"})

#: Method calls that force/settle pending lazy state before host observation.
FORCING_CALLS = frozenset(
    {
        "_settle",
        "_force",
        "_invalidate",
        "indices_array",
        "values_array",
        "to_dense",
        "to_lists",
        "to_coo",
        "compact",
        "snapshot",
    }
)

#: Free functions from repro.lazy.schedule that force.
FORCING_NAMES = frozenset({"force", "sync", "wait"})

#: Property loads that force (Vector.container / Matrix.container).
FORCING_PROPERTIES = frozenset({"container"})


@dataclass(frozen=True)
class CallEvent:
    """One call site, with Name-valued arguments mapped for propagation."""

    line: int
    func: str  # bare name for Name calls, attr for method calls
    is_method: bool
    args: Tuple[Optional[str], ...]  # Name args by position, else None
    keywords: Tuple[Tuple[str, Optional[str]], ...]


@dataclass
class FunctionSummary:
    relpath: str
    qualname: str
    params: List[str] = field(default_factory=list)
    payload_reads: Set[str] = field(default_factory=set)
    payload_writes: Set[str] = field(default_factory=set)
    stores: List[Tuple[str, int]] = field(default_factory=list)
    bumps: List[Tuple[str, int]] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    forcing_lines: List[int] = field(default_factory=list)
    observations: List[Tuple[str, int]] = field(default_factory=list)
    fresh: Set[str] = field(default_factory=set)
    param_alias: Dict[str, str] = field(default_factory=dict)
    #: Params stored-through without a later bump (filled by the fixpoint).
    unbumped_params: Set[str] = field(default_factory=set)

    def root_param(self, name: str) -> Optional[str]:
        """Resolve a name to the param it aliases, if any."""
        seen = 0
        while name in self.param_alias and seen < 8:
            name = self.param_alias[name]
            seen += 1
        return name if name in self.params else None

    def is_fresh(self, name: str) -> bool:
        return name in self.fresh and self.root_param(name) is None

    def forced_before(self, line: int) -> bool:
        return any(fl < line for fl in self.forcing_lines)


class _Extractor(ast.NodeVisitor):
    """Single-pass effect extraction for one function body."""

    def __init__(self, summary: FunctionSummary) -> None:
        self.s = summary

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _root_name(expr: ast.expr) -> Optional[str]:
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    def _mark_store(self, target: ast.expr, line: int) -> None:
        attr: ast.expr = target
        if isinstance(attr, ast.Subscript):
            attr = attr.value
        if isinstance(attr, ast.Attribute) and attr.attr in PAYLOAD_ATTRS:
            base = self._root_name(attr.value)
            if base is not None:
                self.s.payload_writes.add(base)
                self.s.stores.append((base, line))

    def _classify_binding(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Call):
            self.s.fresh.add(name)
        elif isinstance(value, ast.Name):
            self.s.param_alias[name] = value.id

    # -- statements ------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            elems = ast.walk(t) if isinstance(t, (ast.Tuple, ast.List)) else iter((t,))
            for el in elems:
                if isinstance(el, (ast.Attribute, ast.Subscript)):
                    self._mark_store(el, node.lineno)
            if isinstance(t, ast.Name):
                self._classify_binding(t.id, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mark_store(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                self._mark_store(node.target, node.lineno)
            if isinstance(node.target, ast.Name):
                self._classify_binding(node.target.id, node.value)
        self.generic_visit(node)

    # -- expressions -----------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.attr in PAYLOAD_ATTRS:
                base = self._root_name(node.value)
                if base is not None:
                    self.s.payload_reads.add(base)
            if node.attr in FORCING_PROPERTIES:
                self.s.forcing_lines.append(node.lineno)
            if node.attr == "_container":
                self.s.observations.append(("_container", node.lineno))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Attribute):
            base = self._root_name(f.value)
            if f.attr in BUMP_METHODS and base is not None:
                self.s.bumps.append((base, node.lineno))
            if f.attr == "install_arrays":
                self.s.observations.append(("install_arrays", node.lineno))
            if f.attr in CONTAINER_READ_METHODS and base is not None:
                self.s.payload_reads.add(base)
            if f.attr in FORCING_CALLS:
                self.s.forcing_lines.append(node.lineno)
            self.s.calls.append(self._call_event(node, f.attr, True))
        elif isinstance(f, ast.Name):
            if f.id in FORCING_NAMES:
                self.s.forcing_lines.append(node.lineno)
            self.s.calls.append(self._call_event(node, f.id, False))
        self.generic_visit(node)

    def _call_event(self, node: ast.Call, func: str, is_method: bool) -> CallEvent:
        args = tuple(a.id if isinstance(a, ast.Name) else None for a in node.args)
        kws = tuple(
            (kw.arg, kw.value.id if isinstance(kw.value, ast.Name) else None)
            for kw in node.keywords
            if kw.arg is not None
        )
        return CallEvent(node.lineno, func, is_method, args, kws)


def _params_of(args: ast.arguments) -> List[str]:
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def summarize_function(
    relpath: str, qualname: str, node: ast.FunctionDef
) -> FunctionSummary:
    s = FunctionSummary(relpath=relpath, qualname=qualname, params=_params_of(node.args))
    ex = _Extractor(s)
    for stmt in node.body:
        ex.visit(stmt)
    return s


def summarize_lambda(relpath: str, qualname: str, node: ast.Lambda) -> FunctionSummary:
    s = FunctionSummary(relpath=relpath, qualname=qualname, params=_params_of(node.args))
    _Extractor(s).visit(node.body)
    return s


SummaryKey = Tuple[str, str]  # (relpath, qualname)


def build_summaries(program: Program) -> Dict[SummaryKey, FunctionSummary]:
    out: Dict[SummaryKey, FunctionSummary] = {}
    for mod in program.modules.values():
        for qualname, fn in mod.functions.items():
            out[(mod.relpath, qualname)] = summarize_function(mod.relpath, qualname, fn)
    return out


def _resolve_callee(
    program: Program, module: Module, event: CallEvent
) -> Optional[SummaryKey]:
    if event.is_method:
        return None
    resolved = program.resolve_function(module, event.func)
    if resolved is None:
        return None
    rmod, rqual = resolved
    return (rmod.relpath, rqual)


def propagate_effects(
    program: Program, summaries: Dict[SummaryKey, FunctionSummary], rounds: int = 6
) -> None:
    """Push callee payload reads/writes back through Name-valued arguments.

    Object-insensitive and flow-insensitive by design: if ``f(c)`` passes a
    caller name to a callee that reads/writes that positional param's
    payload, the caller inherits the effect on ``c``.  Iterated to a
    fixpoint so effects flow through helper chains of any depth.
    """
    for _ in range(rounds):
        changed = False
        for mod in program.modules.values():
            for qualname in mod.functions:
                s = summaries[(mod.relpath, qualname)]
                for ev in s.calls:
                    key = _resolve_callee(program, mod, ev)
                    if key is None or key not in summaries:
                        continue
                    callee = summaries[key]
                    for pos, argname in enumerate(ev.args):
                        if argname is None or pos >= len(callee.params):
                            continue
                        p = callee.params[pos]
                        if p in callee.payload_reads and argname not in s.payload_reads:
                            s.payload_reads.add(argname)
                            changed = True
                        if p in callee.payload_writes and argname not in s.payload_writes:
                            s.payload_writes.add(argname)
                            changed = True
                    for kwname, argname in ev.keywords:
                        if argname is None or kwname not in callee.params:
                            continue
                        if kwname in callee.payload_reads and argname not in s.payload_reads:
                            s.payload_reads.add(argname)
                            changed = True
                        if kwname in callee.payload_writes and argname not in s.payload_writes:
                            s.payload_writes.add(argname)
                            changed = True
        if not changed:
            break
