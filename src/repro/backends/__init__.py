"""Backend layer: abstract interface, registry, and the three built-ins."""

from .base import Backend
from .dispatch import (
    available_backends,
    current_backend,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "Backend",
    "available_backends",
    "current_backend",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
]
