"""CUDA-style occupancy calculator.

Real kernels rarely reach 100% theoretical occupancy: resident blocks per SM
are limited by whichever of four resources runs out first — warp slots,
block slots, registers, or shared memory.  This module reproduces the
arithmetic of NVIDIA's occupancy calculator for the simulated device, so
kernel authors (and the Table 3-style ablations) can reason about launch
configurations quantitatively.

The cost model uses a simpler grid-size heuristic by default; pass a
:class:`KernelResources` through :func:`occupancy` for the detailed figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidLaunchError

__all__ = ["SMLimits", "KernelResources", "OccupancyResult", "occupancy", "K40_LIMITS"]


@dataclass(frozen=True)
class SMLimits:
    """Per-SM hardware limits (defaults: Kepler GK110 / K40)."""

    max_warps: int = 64
    max_blocks: int = 16
    registers: int = 65536
    shared_mem_bytes: int = 49152
    warp_size: int = 32
    register_alloc_unit: int = 256
    shared_alloc_unit: int = 256


K40_LIMITS = SMLimits()


@dataclass(frozen=True)
class KernelResources:
    """What one block of the kernel consumes."""

    threads_per_block: int
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0


@dataclass(frozen=True)
class OccupancyResult:
    """Resident blocks/warps per SM and the limiting resource."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float  # resident warps / max warps
    limiter: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OccupancyResult({self.occupancy:.0%}, {self.blocks_per_sm} blocks/SM, "
            f"limited by {self.limiter})"
        )


def _round_up(x: int, unit: int) -> int:
    return ((x + unit - 1) // unit) * unit


def occupancy(res: KernelResources, limits: SMLimits = K40_LIMITS) -> OccupancyResult:
    """Resident-block arithmetic of the CUDA occupancy calculator."""
    if res.threads_per_block < 1:
        raise InvalidLaunchError(f"threads_per_block must be >= 1, got {res.threads_per_block}")
    if res.threads_per_block > limits.max_warps * limits.warp_size:
        raise InvalidLaunchError(
            f"block of {res.threads_per_block} threads exceeds SM warp capacity"
        )
    warps_per_block = -(-res.threads_per_block // limits.warp_size)

    candidates = {}
    candidates["warp slots"] = limits.max_warps // warps_per_block
    candidates["block slots"] = limits.max_blocks
    regs_per_block = _round_up(
        res.registers_per_thread * warps_per_block * limits.warp_size,
        limits.register_alloc_unit,
    )
    candidates["registers"] = (
        limits.registers // regs_per_block if regs_per_block else limits.max_blocks
    )
    if res.shared_mem_per_block > 0:
        smem = _round_up(res.shared_mem_per_block, limits.shared_alloc_unit)
        if smem > limits.shared_mem_bytes:
            raise InvalidLaunchError(
                f"block shared memory {smem} exceeds SM capacity {limits.shared_mem_bytes}"
            )
        candidates["shared memory"] = limits.shared_mem_bytes // smem

    limiter = min(candidates, key=lambda k: candidates[k])
    blocks = max(0, candidates[limiter])
    if blocks == 0:
        raise InvalidLaunchError("kernel resources allow zero resident blocks")
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / limits.max_warps,
        limiter=limiter,
    )
