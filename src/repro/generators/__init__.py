"""Synthetic graph generators (the paper-era benchmark workloads)."""

from .blockmodel import stochastic_block_model
from .common import finalize_edges
from .preferential import barabasi_albert
from .random import erdos_renyi_gnm, erdos_renyi_gnp
from .regular import (
    complete_graph,
    cycle_graph,
    grid_2d,
    path_graph,
    star_graph,
    torus_2d,
)
from .rmat import rmat, rmat_edges
from .smallworld import watts_strogatz

__all__ = [
    "finalize_edges",
    "stochastic_block_model",
    "barabasi_albert",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "complete_graph",
    "cycle_graph",
    "grid_2d",
    "path_graph",
    "star_graph",
    "torus_2d",
    "rmat",
    "rmat_edges",
    "watts_strogatz",
]
