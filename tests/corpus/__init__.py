"""Planted-violation corpus pairing each gbcheck rule with its gbsan twin.

Each ``planted_*.py`` module serves double duty:

* its **source text** is fed to :func:`repro.analysis.analyze_sources`
  under a virtual ``repro/``-rooted path, where gbcheck must flag the
  planted static violation; and
* its **functions** are imported and executed by
  ``tests/test_gbcheck_corpus.py`` under an active sanitizer, where the
  matching runtime hazard must trip gbsan (or demonstrably evade it —
  which is exactly why the static rule exists).

Keep module top levels benign: definitions only, no side effects.
"""
