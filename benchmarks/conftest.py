"""Shared helpers for the benchmark suite.

Conventions (see DESIGN.md, per-experiment index):

- every benchmark test uses the ``benchmark`` fixture so the whole suite
  runs under ``pytest benchmarks/ --benchmark-only``;
- backends measure differently: ``reference``/``cpu`` report wall time,
  ``cuda_sim`` reports the cost model's simulated device time, which is
  attached to ``benchmark.extra_info["simulated_us"]`` (its wall time is
  simulation overhead, not a claim about GPU speed);
- each table/figure test renders the paper-style table with
  :mod:`repro.bench.tables` and writes it to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.backends.dispatch import get_backend, use_backend
from repro.bench.harness import simulated_gpu_time, time_operation
from repro.gpu.device import reset_device

RESULTS_DIR = Path(__file__).parent / "results"


def fresh_device_state() -> None:
    """Evict backend residency, *then* reset the device.

    Order matters: eviction frees each buffer into the allocator that
    issued it.  Resetting first would hand out a fresh allocator while the
    backend still considers the previous case's containers resident — later
    cases would silently skip uploads, so the allocator and profiler
    counters would disagree about transfer traffic between cases.
    """
    get_backend("cuda_sim").evict_all()
    reset_device()


def measure(backend: str, fn, repeat: int = 3):
    """One Measurement for ``fn`` under ``backend`` (see bench.harness)."""
    return time_operation(backend, fn, repeat=repeat)


def sim_metrics(fn) -> dict:
    """Deterministic cuda_sim counters for one case.

    Charged kernel launches and H2D traffic come from the cost model, not
    the host clock, so they are bit-stable across machines — CI diffs them
    against committed baselines with a hard tolerance (see
    ``check_bench_regressions.py``).
    """
    m = simulated_gpu_time(fn)
    out = {
        "kernel_launches": m.kernel_launches,
        "h2d_bytes": round(m.h2d_bytes),
    }
    # Serving runs return ServiceStats: record the coalescing-depth
    # histogram alongside the device counters so fig9 can attribute
    # latency to batch depth (keys stringified for stable JSON).
    hist = getattr(m.result, "batch_size_histogram", None)
    if hist is not None:
        out["batch_size_histogram"] = {
            str(k): int(v) for k, v in sorted(hist.items())
        }
    return out


def bench_backend(benchmark, backend: str, fn, rounds: int = 3):
    """Drive pytest-benchmark for one (backend, op) cell.

    For real backends the benchmark statistic is the wall time.  For the
    simulated GPU the statistic is the simulation's wall time; the modeled
    device time is attached as extra_info.
    """
    if backend == "cuda_sim":
        m = simulated_gpu_time(fn)
        benchmark.extra_info["simulated_us"] = round(m.microseconds, 3)
        benchmark.extra_info["kernel_launches"] = m.kernel_launches
        benchmark.extra_info["h2d_bytes"] = round(m.h2d_bytes)

        def run():
            fresh_device_state()
            with use_backend("cuda_sim"):
                return fn()

        benchmark.pedantic(run, rounds=max(1, rounds), iterations=1)
        return m.seconds

    def run():
        with use_backend(backend):
            return fn()

    benchmark.pedantic(run, rounds=max(1, rounds), iterations=1)
    return None


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{name}.txt"
    out.write_text(text + "\n")
    print()
    print(text)


def save_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark record.

    Written as ``benchmarks/results/BENCH_<name>.json`` so CI (and the
    driver's acceptance checks) can diff figures without scraping the
    rendered ASCII tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {out}")
    return out


@pytest.fixture(autouse=True)
def _quiet_device():
    """Each benchmark starts from a clean simulated device."""
    fresh_device_state()
    yield
