"""Table 1 — GraphBLAS primitive runtimes per backend.

Reconstructed experiment (see DESIGN.md): every primitive runs on every
backend on the same R-MAT graph; the reference (sequential) backend is the
baseline, the vectorized CPU backend and the simulated GPU backend must both
beat it by a wide margin at this scale.  Columns: primitive, then one time
column per backend (seconds; cuda_sim column is modeled device time).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import check_ordering, format_table
from repro.bench.workloads import get_workload, random_frontier
from repro.core import operations as ops
from repro.core.assign import assign_scalar
from repro.core.monoid import PLUS_MONOID
from repro.core.operators import ABS, PLUS
from repro.core.semiring import PLUS_TIMES

from conftest import bench_backend, save_table

WORKLOAD = "rmat_s10"
BACKENDS = ["reference", "cpu", "cuda_sim"]


def _graph():
    return get_workload(WORKLOAD)


def primitive_ops():
    """(name, thunk factory) for each primitive exercised by Table 1."""
    g = _graph()
    n = g.nrows
    u = random_frontier(n, n // 4, seed=3)
    dense_u = gb.Vector.full(1.0, n, gb.FP64)
    small = gb.generators.rmat(scale=7, edge_factor=4, seed=9)
    # Separate copy for transpose: the shared graph's cached column view
    # would short-circuit the backend kernel and report zero device time.
    g_t = g.dup()

    def mxv():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.mxv(w, g, u, PLUS_TIMES)

    def vxm():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.vxm(w, u, g, PLUS_TIMES)

    def mxm():
        c = gb.Matrix.sparse(gb.FP64, small.nrows, small.ncols)
        return ops.mxm(c, small, small, PLUS_TIMES)

    def ewise_add():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.ewise_add(w, u, dense_u, PLUS)

    def ewise_mult():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.ewise_mult(w, u, dense_u, PLUS)

    def apply_():
        c = gb.Matrix.sparse(gb.FP64, n, n)
        return ops.apply(c, g, ABS)

    def reduce_():
        return ops.reduce(g, PLUS_MONOID)

    def reduce_rows():
        w = gb.Vector.sparse(gb.FP64, n)
        return ops.reduce_to_vector(w, g, PLUS_MONOID)

    def transpose():
        c = gb.Matrix.sparse(gb.FP64, n, n)
        return ops.transpose(c, g_t)

    def extract():
        w = gb.Vector.sparse(gb.FP64, n // 2)
        return ops.extract(w, dense_u, np.arange(n // 2))

    def assign():
        w = gb.Vector.sparse(gb.FP64, n)
        return assign_scalar(w, 1.0, indices=u.indices_array())

    return [
        ("mxv", mxv),
        ("vxm", vxm),
        ("mxm", mxm),
        ("eWiseAdd", ewise_add),
        ("eWiseMult", ewise_mult),
        ("apply", apply_),
        ("reduce", reduce_),
        ("reduceRows", reduce_rows),
        ("transpose", transpose),
        ("extract", extract),
        ("assign", assign),
    ]


_PRIMS = primitive_ops()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("prim", [name for name, _ in _PRIMS])
def test_table1_primitive(benchmark, backend, prim):
    fn = dict(_PRIMS)[prim]
    rounds = 1 if backend == "reference" else 3
    bench_backend(benchmark, backend, fn, rounds=rounds)


def test_table1_render(benchmark):
    """Render Table 1 and assert the paper-shape ordering."""

    def build():
        rows = []
        orderings_ok = []
        for name, fn in _PRIMS:
            times = {}
            for b in BACKENDS:
                times[b] = time_operation(b, fn, repeat=1 if b == "reference" else 3).seconds
            rows.append(
                [
                    name,
                    times["reference"],
                    times["cpu"],
                    times["cuda_sim"],
                    round(times["reference"] / max(times["cpu"], 1e-12), 1),
                    round(times["reference"] / max(times["cuda_sim"], 1e-12), 1),
                ]
            )
            # Shape claim: vectorized and GPU-sim beat sequential on the
            # heavy primitives (product/transform ops; trivial O(1)-ish ops
            # like reduce on tiny data are allowed to tie).
            if name in ("mxv", "vxm", "mxm", "apply"):
                orderings_ok.extend(
                    check_ordering(times, ["cpu", "cuda_sim"], "reference", min_factor=2.0)
                )
        table = format_table(
            f"Table 1 — primitive runtimes on {WORKLOAD} (seconds; cuda_sim = modeled device time)",
            ["primitive", "reference", "cpu", "cuda_sim", "cpu spdup", "gpu spdup"],
            rows,
        )
        save_table("table1_primitives", table)
        assert not orderings_ok, "\n".join(orderings_ok)
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
