"""Backend interface.

A backend supplies the *compute* kernels for GraphBLAS operations over the
shared containers.  It receives fully-validated, canonical containers and a
semiring/operator and returns the raw result ``T``; the frontend applies the
accumulate/mask/replace write pipeline (see :mod:`repro.core.accumulate`).
This split is GBTL's frontend/backend separation: the paper's claim is that
algorithms written against the frontend run unchanged on a sequential CPU
backend or a CUDA backend, and here likewise on :mod:`reference`, :mod:`cpu`,
and :mod:`cuda_sim` backends.

Backends may *prune* work using the optional ``mask``/``desc`` hints passed
to the product kernels (pre-filtering T by the effective mask commutes with
the write pipeline), and may use ``direction`` ("push"/"pull"/"auto") to
choose SpMSpV strategy — the Fig. 5 ablation knob.

Cold-path kernels (extract, transpose, kronecker) have container-level
default implementations so a backend only must provide the hot kernels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..core.descriptor import DEFAULT, Descriptor
from ..core.monoid import Monoid
from ..core.operators import BinaryOp, IndexUnaryOp, UnaryOp
from ..core.semiring import Semiring
from ..types import GrBType, promote

__all__ = ["Backend"]


class Backend(ABC):
    """Abstract compute backend. Subclasses set :attr:`name`."""

    name: str = "abstract"

    # ------------------------------------------------------------------
    # Matrix-vector and matrix-matrix products (hot path, abstract)
    # ------------------------------------------------------------------

    @abstractmethod
    def mxv(
        self,
        a: CSRMatrix,
        u: SparseVector,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc=None,
    ) -> SparseVector:
        """``t = A ⊗ u`` (row picture).

        ``mask``/``desc`` are pruning hints; ``csc`` is an optional cached
        column view of ``a`` enabling the push direction without a fresh
        transpose.
        """

    @abstractmethod
    def mxm(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        semiring: Semiring,
        mask: Optional[CSRMatrix] = None,
        desc: Descriptor = DEFAULT,
    ) -> CSRMatrix:
        """``T = A ⊗ B``."""

    def vxm(
        self,
        u: SparseVector,
        a: CSRMatrix,
        semiring: Semiring,
        mask: Optional[SparseVector] = None,
        desc: Descriptor = DEFAULT,
        direction: str = "auto",
        csc=None,
    ) -> SparseVector:
        """``t = u ⊗ A == Aᵀ ⊗ u``. Default routes through :meth:`mxv`.

        The multiply's operand order matters for non-commutative operators
        (vxm computes ``mult(u_k, A_kj)``), so the routed call flips it.
        """
        mult = semiring.mult
        flipped = Semiring(
            f"_flip({semiring.name})",
            semiring.add,
            BinaryOp(
                f"_flip({mult.name})",
                lambda x, y: mult.func(y, x),
                mult.bool_out,
                mult.commutative,
                False,
            ),
        )
        return self.mxv(a.cached_transpose(), u, flipped, mask, desc, direction)

    # ------------------------------------------------------------------
    # Elementwise (hot path, abstract)
    # ------------------------------------------------------------------

    @abstractmethod
    def ewise_add_vector(
        self, u: SparseVector, v: SparseVector, op: BinaryOp
    ) -> SparseVector:
        """Union elementwise: op where both present, pass-through otherwise."""

    @abstractmethod
    def ewise_mult_vector(
        self, u: SparseVector, v: SparseVector, op: BinaryOp
    ) -> SparseVector:
        """Intersection elementwise: op only where both present."""

    @abstractmethod
    def ewise_add_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        """Union elementwise over matrices."""

    @abstractmethod
    def ewise_mult_matrix(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        """Intersection elementwise over matrices."""

    # ------------------------------------------------------------------
    # Fused kernels — composition defaults
    # ------------------------------------------------------------------

    def ewise_apply_vector(
        self,
        u: SparseVector,
        v: SparseVector,
        binop: BinaryOp,
        unop: UnaryOp,
        union: bool = True,
    ) -> SparseVector:
        """``unop(u (∪|∩) v)`` — elementwise combine immediately mapped.

        The default composes the two abstract kernels; fused backends (the
        simulated GPU) override this with a single kernel so the
        intermediate never round-trips through memory or costs a second
        launch.
        """
        t = (
            self.ewise_add_vector(u, v, binop)
            if union
            else self.ewise_mult_vector(u, v, binop)
        )
        return self.apply_vector(t, unop)

    def ewise_apply_matrix(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        binop: BinaryOp,
        unop: UnaryOp,
        union: bool = True,
    ) -> CSRMatrix:
        """Matrix analogue of :meth:`ewise_apply_vector`."""
        t = (
            self.ewise_add_matrix(a, b, binop)
            if union
            else self.ewise_mult_matrix(a, b, binop)
        )
        return self.apply_matrix(t, unop)

    def frontier_step(
        self,
        levels: SparseVector,
        frontier: SparseVector,
        a: CSRMatrix,
        value: Any,
        semiring: Semiring,
        desc: Descriptor,
        direction: str = "auto",
        csc=None,
    ):
        """One fused BFS-style expansion step; returns (new_levels, new_frontier).

        Semantics are exactly ``assign_scalar(levels, value, frontier.indices)``
        followed by ``frontier<levels, desc> = frontier ⊗ A`` (vxm) — the
        loop body of level BFS.  The default composes the region merge and
        the masked product; the simulated GPU overrides it with one fused
        kernel launch, collapsing the per-iteration launch count.

        ``frontier.indices`` must be canonical (sorted unique), which the
        write pipeline guarantees for any vector container.
        """
        from ..core.accumulate import merge_vector
        from ..core.assign import merge_region_vector

        idx = frontier.indices
        vals = np.full(idx.size, levels.type.cast(value), dtype=levels.type.dtype)
        self.charge_assign(idx.size, levels)
        new_levels = merge_region_vector(
            levels, idx.copy(), vals, idx, None, None, DEFAULT
        )
        t = self.vxm(frontier, a, semiring, new_levels, desc, direction, csc)
        new_frontier = merge_vector(frontier, t, new_levels, None, desc)
        return new_levels, new_frontier

    def ewise_reduce_vector(
        self,
        u: SparseVector,
        v: SparseVector,
        binop: BinaryOp,
        unop: Optional[UnaryOp],
        union: bool,
        monoid: Monoid,
        out_type,
    ) -> tuple:
        """Elementwise combine (+ optional map), cast, and full fold.

        Returns ``(t, value)``: the combined vector already cast to the
        output's domain, and the monoid fold over its values.  The lazy
        optimizer's ewise→reduce fusion targets this hook; the default
        composes the abstract kernels (bit-identical to the separate ops),
        while the simulated GPU runs the whole chain as one kernel so the
        intermediate never round-trips through device memory.
        """
        if unop is not None:
            t = self.ewise_apply_vector(u, v, binop, unop, union)
        elif union:
            t = self.ewise_add_vector(u, v, binop)
        else:
            t = self.ewise_mult_vector(u, v, binop)
        t = t.astype(out_type)
        return t, self.reduce_vector_scalar(t, monoid)

    def fill_ewise_vector(
        self,
        value: Any,
        size: int,
        fill_type,
        other: SparseVector,
        binop: BinaryOp,
        fill_first: bool,
    ) -> SparseVector:
        """Constant full-range fill combined elementwise (union) with ``other``.

        Target of the lazy optimizer's fill→ewise fusion (the PageRank
        ``assign_scalar; ewise_add`` teleport idiom).  The default
        materialises the fill and composes; the simulated GPU generates the
        constant in-register inside one kernel, so the dense fill vector is
        never allocated on the device nor scattered by a separate launch.
        """
        fill = SparseVector(
            size,
            np.arange(size, dtype=np.int64),
            np.full(size, fill_type.cast(value), dtype=fill_type.dtype),
            fill_type,
        )
        if fill_first:
            return self.ewise_add_vector(fill, other, binop)
        return self.ewise_add_vector(other, fill, binop)

    def sink_restrict(self, container: SparseVector, mask) -> SparseVector:
        """Restrict an operand to a mask's stored index set (mask sinking).

        The lazy optimizer calls this on the inputs of elementwise/apply
        nodes whose output mask is non-complemented: entries the mask can
        never admit are dropped *before* the kernel runs.  Identity by
        default; the simulated GPU returns a restricted view so kernel work
        scales with the mask instead of the operands.
        """
        del mask
        return container

    # ------------------------------------------------------------------
    # Apply / select / reduce (hot path, abstract)
    # ------------------------------------------------------------------

    @abstractmethod
    def apply_vector(self, u: SparseVector, op: UnaryOp) -> SparseVector:
        """Map ``op`` over stored values."""

    @abstractmethod
    def apply_matrix(self, a: CSRMatrix, op: UnaryOp) -> CSRMatrix:
        """Map ``op`` over stored values."""

    @abstractmethod
    def reduce_vector_scalar(self, u: SparseVector, monoid: Monoid) -> Any:
        """Fold all stored values (identity when empty)."""

    @abstractmethod
    def reduce_matrix_vector(self, a: CSRMatrix, monoid: Monoid) -> SparseVector:
        """Row-wise fold; rows with no entries produce no entry."""

    def reduce_matrix_scalar(self, a: CSRMatrix, monoid: Monoid) -> Any:
        """Fold every stored value of a matrix. Defaults to monoid fold."""
        return monoid.reduce_array(a.values, a.type)

    # ------------------------------------------------------------------
    # Apply with index (select) — container-level defaults
    # ------------------------------------------------------------------

    def select_vector(self, u: SparseVector, op: IndexUnaryOp, thunk: Any) -> SparseVector:
        """Keep entries where ``op(x, i, 0, thunk)`` is truthy."""
        if u.nvals == 0:
            return SparseVector.empty(u.size, u.type)
        keep = np.asarray(op(u.values, u.indices, np.zeros_like(u.indices), thunk), dtype=bool)
        return SparseVector(u.size, u.indices[keep], u.values[keep], u.type)

    def select_matrix(self, a: CSRMatrix, op: IndexUnaryOp, thunk: Any) -> CSRMatrix:
        """Keep entries where ``op(x, i, j, thunk)`` is truthy."""
        if a.nvals == 0:
            return CSRMatrix.empty(a.nrows, a.ncols, a.type)
        rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        keep = np.asarray(op(a.values, rows, a.indices, thunk), dtype=bool)
        indptr = np.zeros(a.nrows + 1, dtype=np.int64)
        kept_rows = rows[keep]
        if kept_rows.size:
            np.add.at(indptr, kept_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(a.nrows, a.ncols, indptr, a.indices[keep], a.values[keep], a.type)

    def apply_indexop_vector(
        self, u: SparseVector, op: IndexUnaryOp, thunk: Any
    ) -> SparseVector:
        """Replace each stored value with ``op(x, i, 0, thunk)``."""
        if u.nvals == 0:
            return SparseVector.empty(u.size, op.result_type(u.type))
        out_t = op.result_type(u.type)
        vals = np.asarray(
            op(u.values, u.indices, np.zeros_like(u.indices), thunk)
        ).astype(out_t.dtype, copy=False)
        return SparseVector(u.size, u.indices.copy(), vals, out_t)

    def apply_indexop_matrix(self, a: CSRMatrix, op: IndexUnaryOp, thunk: Any) -> CSRMatrix:
        """Replace each stored value with ``op(x, i, j, thunk)``."""
        out_t = op.result_type(a.type)
        if a.nvals == 0:
            return CSRMatrix.empty(a.nrows, a.ncols, out_t)
        rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        vals = np.asarray(op(a.values, rows, a.indices, thunk)).astype(out_t.dtype, copy=False)
        return CSRMatrix(a.nrows, a.ncols, a.indptr.copy(), a.indices.copy(), vals, out_t)

    # ------------------------------------------------------------------
    # Structural kernels — container-level defaults
    # ------------------------------------------------------------------

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        return a.cached_transpose()

    def charge_assign(self, nvals: int, out) -> None:
        """Accounting hook: the frontend's assign scatters ``nvals`` entries.

        Real backends do nothing (assign runs in the shared frontend merge);
        the simulated GPU charges a scatter kernel so assign shows up on the
        device timeline like it would in a CUDA backend.
        """

    def note_result(self, container) -> None:
        """Accounting hook: ``container`` was produced by the write pipeline.

        Real backends do nothing.  The simulated GPU marks the container
        device-resident without charging PCIe traffic — results of device
        computation do not need a host→device copy before their next use.
        """

    def kernel_graph(self, name: str):
        """A capture/replay kernel graph for an iterative algorithm.

        Real backends return a no-op graph (iterations run unchanged); the
        simulated GPU returns a :class:`~repro.gpu.graph.KernelGraph` that
        captures the first iteration's launch sequence and replays later
        iterations under a single launch-overhead charge.
        """
        from ..gpu.graph import NullKernelGraph

        return NullKernelGraph(name)

    def extract_vector(self, u: SparseVector, idx: np.ndarray) -> SparseVector:
        """``t[k] = u[idx[k]]`` keeping only present source entries."""
        idx = np.asarray(idx, dtype=np.int64)
        pos = np.searchsorted(u.indices, idx)
        pos_c = np.minimum(pos, max(u.indices.size - 1, 0))
        present = (
            (pos < u.indices.size) & (u.indices[pos_c] == idx)
            if u.indices.size
            else np.zeros(idx.size, dtype=bool)
        )
        out_idx = np.flatnonzero(present).astype(np.int64)
        out_vals = u.values[pos[present]] if present.any() else np.empty(0, dtype=u.type.dtype)
        return SparseVector(idx.size, out_idx, out_vals, u.type)

    def extract_matrix(self, a: CSRMatrix, rows: np.ndarray, cols: np.ndarray) -> CSRMatrix:
        """``T[p, q] = A[rows[p], cols[q]]`` keeping only present entries."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        # Column gather table: for each source col, list of target positions.
        col_order = np.argsort(cols, kind="stable")  # gbsan: ok(argsort) -- reference-backend extract, correctness oracle only
        sorted_cols = cols[col_order]
        out_rows, out_cols, out_vals = [], [], []
        for p, src_r in enumerate(rows):
            cidx, cvals = a.row(int(src_r))
            if cidx.size == 0:
                continue
            # For each selected column q, locate A[src_r, cols[q]].
            loc = np.searchsorted(cidx, sorted_cols)
            loc_c = np.minimum(loc, cidx.size - 1)
            present = (loc < cidx.size) & (cidx[loc_c] == sorted_cols)
            hits = np.flatnonzero(present)
            if hits.size == 0:
                continue
            out_rows.append(np.full(hits.size, p, dtype=np.int64))
            out_cols.append(col_order[hits])
            out_vals.append(cvals[loc[hits]])
        from ..containers.coo import COO
        from ..containers.convert import coo_to_csr

        if not out_rows:
            return CSRMatrix.empty(rows.size, cols.size, a.type)
        coo = COO(
            rows.size,
            cols.size,
            np.concatenate(out_rows),
            np.concatenate(out_cols),
            np.concatenate(out_vals),
            a.type,
        )
        # cols (and hence out_cols) may repeat when the extraction index
        # repeats a column; the spec keeps each as its own entry, and
        # distinct target positions never collide, so no dup op is needed.
        return coo_to_csr(coo, dup=None)

    def kronecker(self, a: CSRMatrix, b: CSRMatrix, op: BinaryOp) -> CSRMatrix:
        """Kronecker product with ``op`` combining value pairs."""
        out_t = op.result_type(promote(a.type, b.type))
        if a.nvals == 0 or b.nvals == 0:
            return CSRMatrix.empty(a.nrows * b.nrows, a.ncols * b.ncols, out_t)
        a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_degrees())
        b_rows = np.repeat(np.arange(b.nrows, dtype=np.int64), b.row_degrees())
        rr = (a_rows[:, None] * b.nrows + b_rows[None, :]).ravel()
        cc = (a.indices[:, None] * b.ncols + b.indices[None, :]).ravel()
        vv = np.asarray(op(np.repeat(a.values, b.nvals), np.tile(b.values, a.nvals)))
        from ..containers.coo import COO
        from ..containers.convert import coo_to_csr

        coo = COO(a.nrows * b.nrows, a.ncols * b.ncols, rr, cc, vv.astype(out_t.dtype), out_t)
        return coo_to_csr(coo, dup=None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Backend {self.name}>"
