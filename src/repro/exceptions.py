"""GraphBLAS error hierarchy.

The GraphBLAS C API specification defines a fixed set of error conditions
(``GrB_DIMENSION_MISMATCH``, ``GrB_INDEX_OUT_OF_BOUNDS``, ...).  GBTL mirrors
these as C++ exceptions; we mirror them as a Python exception hierarchy so
that callers can catch either the broad :class:`GraphBLASError` or a precise
subclass.

API errors (bad arguments, detectable before any work happens) derive from
:class:`ApiError`; execution errors (detected mid-operation) derive from
:class:`ExecutionError`.  This matches the spec's split between "API errors"
and "execution errors".
"""

from __future__ import annotations


class GraphBLASError(Exception):
    """Base class for every error raised by this library."""


class ApiError(GraphBLASError):
    """An argument error detectable before execution begins."""


class ExecutionError(GraphBLASError):
    """An error detected during execution of an operation."""


class DimensionMismatchError(ApiError):
    """Operand shapes are incompatible for the requested operation.

    Mirrors ``GrB_DIMENSION_MISMATCH``.
    """

    def __init__(self, message: str = "", *, expected=None, actual=None):
        if expected is not None or actual is not None:
            detail = f" (expected {expected}, got {actual})"
        else:
            detail = ""
        super().__init__((message or "dimension mismatch") + detail)
        self.expected = expected
        self.actual = actual


class IndexOutOfBoundsError(ApiError, IndexError):
    """An index exceeds the dimension of the object it indexes.

    Mirrors ``GrB_INDEX_OUT_OF_BOUNDS``.  Also an :class:`IndexError` so
    Pythonic callers that catch ``IndexError`` keep working.
    """


class DomainMismatchError(ApiError, TypeError):
    """Operand domains (types) are incompatible with the operator.

    Mirrors ``GrB_DOMAIN_MISMATCH``.
    """


class EmptyObjectError(ApiError):
    """An operation requires a stored value that is not present.

    Mirrors ``GrB_EMPTY_OBJECT`` / extracting an element at an empty
    position (``GrB_NO_VALUE`` treated as an error when a value is demanded).
    """


class InvalidValueError(ApiError, ValueError):
    """A scalar argument has an invalid value (e.g. negative dimension).

    Mirrors ``GrB_INVALID_VALUE``.
    """


class InvalidObjectError(ExecutionError):
    """An object is internally corrupt or was not properly initialised.

    Mirrors ``GrB_INVALID_OBJECT``.
    """


class OutputNotEmptyError(ApiError):
    """``build`` was called on a container that already holds entries.

    Mirrors ``GrB_OUTPUT_NOT_EMPTY``.
    """


class NotImplementedInBackendError(GraphBLASError, NotImplementedError):
    """The selected backend does not implement the requested kernel."""


class BackendError(ExecutionError):
    """A backend failed internally while executing a kernel."""


class DeviceError(ExecutionError):
    """The simulated GPU device reported an error (OOM, bad launch, ...)."""


class DeviceOutOfMemoryError(DeviceError):
    """The simulated device memory pool is exhausted."""

    def __init__(self, requested: int, free: int):
        super().__init__(
            f"device out of memory: requested {requested} bytes, {free} free"
        )
        self.requested = requested
        self.free = free


class InvalidLaunchError(DeviceError, ValueError):
    """A kernel launch configuration is invalid (grid/block out of range)."""


class SanitizerError(DeviceError):
    """gbsan (strict mode) detected a hazard on the simulated device.

    Carries the triggering :class:`repro.sanitizer.Finding` as ``finding``.
    """

    def __init__(self, finding) -> None:
        super().__init__(str(finding))
        self.finding = finding
