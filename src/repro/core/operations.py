"""GraphBLAS operations — the frontend API.

Each function mirrors one GraphBLAS C-API operation.  The common shape is::

    op(out, ...inputs..., mask=None, accum=None, desc=DEFAULT) -> out

- ``out`` is a :class:`~repro.core.vector.Vector` /
  :class:`~repro.core.matrix.Matrix` that is mutated in place (and returned
  for chaining), exactly like the ``w``/``C`` output argument of the C API;
- ``mask`` is an optional Vector/Matrix whose entries gate writes;
- ``accum`` is an optional :class:`~repro.core.operators.BinaryOp` merging
  the computed result into existing output entries;
- ``desc`` carries transpose / mask-complement / structural / replace flags.

The function validates shapes, resolves descriptor transposes against the
Matrix's cached column view, calls the active backend's kernel for the raw
result ``T``, and finishes with the shared write pipeline
(:mod:`repro.core.accumulate`).

Vector-valued operations route their backend call + merge through a *run
closure* handed to :mod:`repro.lazy.schedule`: under lazy evaluation the
closure is recorded on the tape (validation still happens eagerly, at call
time), otherwise it executes on the spot — the eager path is the identical
code minus the tape.  Matrix-valued operations stay eager.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

import numpy as np

from ..backends.dispatch import current_backend
from ..containers.csc import CSCMatrix
from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..exceptions import DimensionMismatchError, DomainMismatchError, InvalidValueError
from ..lazy import schedule as _lz
from ..types import BOOL, GrBType
from .accumulate import merge_matrix, merge_vector
from .descriptor import DEFAULT, Descriptor
from .matrix import Matrix
from .monoid import Monoid
from .operators import BinaryOp, IndexUnaryOp, UnaryOp
from .scalar import Scalar
from .semiring import PLUS_TIMES, Semiring
from .vector import Vector

__all__ = [
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "select",
    "reduce",
    "reduce_to_vector",
    "transpose",
    "extract",
    "extract_submatrix",
    "extract_col",
    "extract_row",
    "kronecker",
]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _mat_input(a: Matrix, transposed: bool) -> CSRMatrix:
    """A's container, honouring a descriptor transpose via the CSC cache."""
    return a.csc().tcsr if transposed else a.container


def _csc_hint(a: Matrix, transposed: bool) -> CSCMatrix:
    """Column view of the (possibly transposed) input, free of extra work."""
    if transposed:
        # Columns of Aᵀ are rows of A: wrap the original CSR directly.
        return CSCMatrix(a.container)
    return a.csc()


def _mask_cont(mask):
    if mask is None:
        return None
    return mask.container


def _check_mask_v(mask, size: int) -> None:
    """Eager mask-shape validation for deferred vector ops.

    The merge (where :func:`~repro.core.mask.check_mask_shape` runs) is
    deferred to flush time under the lazy layer; the user-facing dimension
    error must still fire at the call site.
    """
    if mask is not None and mask.size != size:
        raise DimensionMismatchError(
            "mask shape", expected=(size,), actual=(mask.size,)
        )


def _require(cond: bool, what: str, expected, actual) -> None:
    if not cond:
        raise DimensionMismatchError(what, expected=expected, actual=actual)


def _check_domain(op: UnaryOp, typ: GrBType) -> None:
    """Pre-flight ``GrB_DOMAIN_MISMATCH``: probe the op on one sample value.

    NumPy refuses some op/dtype pairings with a raw ``TypeError`` (e.g.
    ``np.negative`` on booleans).  Probing a scalar sample up front turns
    that into a uniform :class:`DomainMismatchError` from the shared
    frontend, before any backend kernel runs — so every backend observes
    the identical exception type.
    """
    try:
        with np.errstate(all="ignore"):
            op.func(typ.dtype.type(1))
    except TypeError as e:
        raise DomainMismatchError(
            f"operator {op.name} is not defined on domain {typ.name}: {e}"
        ) from e


def _clean(desc: Descriptor) -> Descriptor:
    """Descriptor passed to backends: transposes already resolved here."""
    if desc.transpose_a or desc.transpose_b:
        return desc.with_(transpose_a=False, transpose_b=False)
    return desc


# ---------------------------------------------------------------------------
# Products
# ---------------------------------------------------------------------------


def mxm(
    c: Matrix,
    a: Matrix,
    b: Matrix,
    semiring: Semiring = PLUS_TIMES,
    mask: Optional[Matrix] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Matrix:
    """``C<mask> accum= A ⊗ B`` — matrix–matrix product over a semiring."""
    ac = _mat_input(a, desc.transpose_a)
    bc = _mat_input(b, desc.transpose_b)
    _require(ac.ncols == bc.nrows, "inner dimension", ac.ncols, bc.nrows)
    _require(
        c.shape == (ac.nrows, bc.ncols), "output shape", (ac.nrows, bc.ncols), c.shape
    )
    t = current_backend().mxm(ac, bc, semiring, _mask_cont(mask), _clean(desc))
    return c._replace(merge_matrix(c.container, t, _mask_cont(mask), accum, desc))


def mxv(
    w: Vector,
    a: Matrix,
    u: Vector,
    semiring: Semiring = PLUS_TIMES,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
    direction: str = "auto",
) -> Vector:
    """``w<mask> accum= A ⊗ u`` — matrix–vector product over a semiring.

    ``direction`` selects the SpMSpV strategy: "push" (frontier expansion),
    "pull" (row gather), or "auto" (cost heuristic) — the Fig. 5 knob.
    """
    ac = _mat_input(a, desc.transpose_a)
    _require(ac.ncols == u.size, "A.ncols vs u.size", ac.ncols, u.size)
    _require(w.size == ac.nrows, "output size", ac.nrows, w.size)
    _check_mask_v(mask, w.size)
    be = current_backend()
    cdesc = _clean(desc)
    csc = _csc_hint(a, desc.transpose_a)

    def run(inp, params):
        t = be.mxv(
            inp["a"], inp["u"], semiring, inp.get("mask"), cdesc,
            params["direction"], csc=csc,
        )
        return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

    return _lz.emit(
        "mxv",
        run,
        {
            "a": ac,
            "u": _lz.arg(u),
            "mask": _lz.arg_mask(mask),
            "out": _lz.out_arg(w, mask, accum),
        },
        {"direction": direction, "semiring": semiring, "desc": cdesc},
        (w,),
    )


def vxm(
    w: Vector,
    u: Vector,
    a: Matrix,
    semiring: Semiring = PLUS_TIMES,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
    direction: str = "auto",
) -> Vector:
    """``w<mask> accum= u ⊗ A`` — row-vector times matrix."""
    ac = _mat_input(a, desc.transpose_a)
    _require(ac.nrows == u.size, "u.size vs A.nrows", ac.nrows, u.size)
    _require(w.size == ac.ncols, "output size", ac.ncols, w.size)
    _check_mask_v(mask, w.size)
    be = current_backend()
    cdesc = _clean(desc)
    csc = _csc_hint(a, desc.transpose_a)

    def run(inp, params):
        t = be.vxm(
            inp["u"], inp["a"], semiring, inp.get("mask"), cdesc,
            params["direction"], csc=csc,
        )
        return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

    return _lz.emit(
        "vxm",
        run,
        {
            "a": ac,
            "u": _lz.arg(u),
            "mask": _lz.arg_mask(mask),
            "out": _lz.out_arg(w, mask, accum),
        },
        {"direction": direction, "semiring": semiring, "desc": cdesc},
        (w,),
    )


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------


def _ewise(
    out,
    a,
    b,
    op: BinaryOp,
    mask,
    accum,
    desc: Descriptor,
    union: bool,
):
    be = current_backend()
    if isinstance(out, Vector):
        _require(a.size == b.size, "operand sizes", a.size, b.size)
        _require(out.size == a.size, "output size", a.size, out.size)
        _check_mask_v(mask, out.size)

        def run(inp, params):
            x, y = inp["a"], inp["b"]
            if params.get("sink"):
                x = be.sink_restrict(x, inp.get("mask"))
                y = be.sink_restrict(y, inp.get("mask"))
            kern = be.ewise_add_vector if union else be.ewise_mult_vector
            t = kern(x, y, op)
            return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

        return _lz.emit(
            "ewise_add_v" if union else "ewise_mult_v",
            run,
            {
                "a": _lz.arg(a),
                "b": _lz.arg(b),
                "mask": _lz.arg_mask(mask),
                "out": _lz.out_arg(out, mask, accum),
            },
            {
                "binop": op,
                "unop": None,
                "union": union,
                "trivial": mask is None and accum is None,
                "accum": accum,
                "desc": desc,
            },
            (out,),
        )
    _require(a.shape == b.shape, "operand shapes", a.shape, b.shape)
    ac = _mat_input(a, desc.transpose_a)
    bc = _mat_input(b, desc.transpose_b)
    _require(ac.shape == bc.shape, "operand shapes", ac.shape, bc.shape)
    _require(out.shape == ac.shape, "output shape", ac.shape, out.shape)
    kern = be.ewise_add_matrix if union else be.ewise_mult_matrix
    t = kern(ac, bc, op)
    return out._replace(merge_matrix(out.container, t, _mask_cont(mask), accum, desc))


def ewise_add(
    out,
    a,
    b,
    op: BinaryOp,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out<mask> accum= a (+) b`` — set-union elementwise (GrB_eWiseAdd).

    Positions present in only one operand pass that value through unchanged.
    Works on two Vectors or two Matrices (matching ``out``).
    """
    return _ewise(out, a, b, op, mask, accum, desc, union=True)


def ewise_mult(
    out,
    a,
    b,
    op: BinaryOp,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out<mask> accum= a (×) b`` — set-intersection elementwise."""
    return _ewise(out, a, b, op, mask, accum, desc, union=False)


# ---------------------------------------------------------------------------
# Apply / select
# ---------------------------------------------------------------------------


def _bind(op: BinaryOp, bind_first, bind_second) -> UnaryOp:
    """Curry a BinaryOp with a bound scalar into a UnaryOp."""
    if (bind_first is None) == (bind_second is None):
        raise InvalidValueError("exactly one of bind_first/bind_second required")
    if bind_first is not None:
        return UnaryOp(
            f"{op.name}_BIND1({bind_first!r})",
            lambda x: op.func(bind_first, x),
            (lambda t: BOOL) if op.bool_out else None,
        )
    return UnaryOp(
        f"{op.name}_BIND2({bind_second!r})",
        lambda x: op.func(x, bind_second),
        (lambda t: GrBType("BOOL", np.bool_, 0)) if op.bool_out else None,
    )


def apply(
    out,
    src,
    op: Union[UnaryOp, BinaryOp, IndexUnaryOp],
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
    bind_first: Any = None,
    bind_second: Any = None,
    thunk: Any = 0,
):
    """``out<mask> accum= op(src)`` — map over stored values.

    ``op`` may be a UnaryOp, a BinaryOp with one of ``bind_first`` /
    ``bind_second`` (``GrB_apply_BinaryOp1st/2nd``), or an IndexUnaryOp with
    ``thunk`` (``GrB_apply_IndexOp``).
    """
    be = current_backend()
    if isinstance(op, BinaryOp):
        op = _bind(op, bind_first, bind_second)
    if isinstance(op, UnaryOp):
        _check_domain(op, src.type)
    if isinstance(out, Vector):
        _require(out.size == src.size, "output size", src.size, out.size)
        _check_mask_v(mask, out.size)
        if isinstance(op, IndexUnaryOp):

            def run_iop(inp, params):
                t = be.apply_indexop_vector(inp["src"], op, thunk)
                return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

            return _lz.emit(
                "apply_iop_v",
                run_iop,
                {
                    "src": _lz.arg(src),
                    "mask": _lz.arg_mask(mask),
                    "out": _lz.out_arg(out, mask, accum),
                },
                {"iop": op, "desc": desc},
                (out,),
            )

        def run(inp, params):
            s = inp["src"]
            if params.get("sink"):
                s = be.sink_restrict(s, inp.get("mask"))
            t = be.apply_vector(s, op)
            return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

        return _lz.emit(
            "apply_v",
            run,
            {
                "src": _lz.arg(src),
                "mask": _lz.arg_mask(mask),
                "out": _lz.out_arg(out, mask, accum),
            },
            {"unop": op, "accum": accum, "desc": desc},
            (out,),
        )
    sc = _mat_input(src, desc.transpose_a)
    _require(out.shape == sc.shape, "output shape", sc.shape, out.shape)
    if isinstance(op, IndexUnaryOp):
        t = be.apply_indexop_matrix(sc, op, thunk)
    else:
        t = be.apply_matrix(sc, op)
    return out._replace(merge_matrix(out.container, t, _mask_cont(mask), accum, desc))


def select(
    out,
    src,
    op: IndexUnaryOp,
    thunk: Any = 0,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
):
    """``out<mask> accum= src where op(value, i, j, thunk)`` (GrB_select)."""
    be = current_backend()
    if isinstance(out, Vector):
        _require(out.size == src.size, "output size", src.size, out.size)
        _check_mask_v(mask, out.size)

        def run(inp, params):
            t = be.select_vector(inp["src"], op, thunk)
            return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

        return _lz.emit(
            "select_v",
            run,
            {
                "src": _lz.arg(src),
                "mask": _lz.arg_mask(mask),
                "out": _lz.out_arg(out, mask, accum),
            },
            {"iop": op, "desc": desc},
            (out,),
        )
    sc = _mat_input(src, desc.transpose_a)
    _require(out.shape == sc.shape, "output shape", sc.shape, out.shape)
    t = be.select_matrix(sc, op, thunk)
    return out._replace(merge_matrix(out.container, t, _mask_cont(mask), accum, desc))


# ---------------------------------------------------------------------------
# Reduce
# ---------------------------------------------------------------------------


def reduce(
    src,
    monoid: Monoid,
    accum: Optional[BinaryOp] = None,
    out: Optional[Scalar] = None,
) -> Any:
    """Fold all stored values of a Vector or Matrix to a scalar.

    With ``out`` (a :class:`Scalar`) and ``accum``, the fold is combined
    into the existing scalar value.  Returns the plain Python/NumPy value.
    """
    be = current_backend()
    if isinstance(src, Vector):

        def run(inp, params):
            return be.reduce_vector_scalar(inp["src"], monoid)

        val = _lz.emit_scalar(
            "reduce_v", run, {"src": _lz.arg(src)}, {"monoid": monoid}
        )
    else:
        val = be.reduce_matrix_scalar(src.container, monoid)
    if out is not None:
        if accum is not None and not out.is_empty:
            val = out.type.cast(accum(out.value, val))
        out.set(val)
        return out.value
    return val


def reduce_to_vector(
    w: Vector,
    a: Matrix,
    monoid: Monoid,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Vector:
    """``w<mask> accum= row-reduce(A)`` (transpose_a folds columns)."""
    ac = _mat_input(a, desc.transpose_a)
    _require(w.size == ac.nrows, "output size", ac.nrows, w.size)
    _check_mask_v(mask, w.size)
    be = current_backend()

    def run(inp, params):
        t = be.reduce_matrix_vector(inp["a"], monoid)
        return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

    return _lz.emit(
        "reduce_mv",
        run,
        {
            "a": ac,
            "mask": _lz.arg_mask(mask),
            "out": _lz.out_arg(w, mask, accum),
        },
        {"monoid": monoid, "desc": desc},
        (w,),
    )


# ---------------------------------------------------------------------------
# Transpose / kronecker
# ---------------------------------------------------------------------------


def transpose(
    c: Matrix,
    a: Matrix,
    mask: Optional[Matrix] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Matrix:
    """``C<mask> accum= Aᵀ`` (with transpose_a set this writes A itself)."""
    # desc.transpose_a composes: transpose of the transpose is A.
    if desc.transpose_a:
        ac = a.container
    elif a._csc is not None or a.container._aux.get("tcsr") is not None:
        ac = a.csc().tcsr  # already materialised: reuse, no backend work
    else:
        ac = current_backend().transpose(a.container)
    _require(c.shape == ac.shape, "output shape", ac.shape, c.shape)
    # share=False: ``ac`` may be A's own container or its cached transpose;
    # the output must not alias either (a later in-place set_element on C
    # would otherwise corrupt A / A's cache).
    return c._replace(
        merge_matrix(c.container, ac, _mask_cont(mask), accum, desc, share=False)
    )


def kronecker(
    c: Matrix,
    a: Matrix,
    b: Matrix,
    op: BinaryOp,
    mask: Optional[Matrix] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Matrix:
    """``C<mask> accum= A ⊗_kron B`` with ``op`` combining value pairs."""
    ac = _mat_input(a, desc.transpose_a)
    bc = _mat_input(b, desc.transpose_b)
    shape = (ac.nrows * bc.nrows, ac.ncols * bc.ncols)
    _require(c.shape == shape, "output shape", shape, c.shape)
    t = current_backend().kronecker(ac, bc, op)
    return c._replace(merge_matrix(c.container, t, _mask_cont(mask), accum, desc))


# ---------------------------------------------------------------------------
# Extract
# ---------------------------------------------------------------------------


def _index_array(idx, dim: int) -> np.ndarray:
    """Resolve an index spec: None = all, else validated int array."""
    if idx is None:
        return np.arange(dim, dtype=np.int64)
    arr = np.asarray(idx, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= dim):
        from ..exceptions import IndexOutOfBoundsError

        raise IndexOutOfBoundsError(f"index outside [0, {dim})")
    return arr


def extract(
    w: Vector,
    u: Vector,
    indices=None,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Vector:
    """``w<mask> accum= u(indices)`` (GrB_Vector_extract)."""
    idx = _index_array(indices, u.size)
    _require(w.size == idx.size, "output size", idx.size, w.size)
    _check_mask_v(mask, w.size)
    be = current_backend()

    def run(inp, params):
        t = be.extract_vector(inp["u"], idx)
        return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

    return _lz.emit(
        "extract_v",
        run,
        {
            "u": _lz.arg(u),
            "mask": _lz.arg_mask(mask),
            "out": _lz.out_arg(w, mask, accum),
        },
        {"desc": desc},
        (w,),
    )


def extract_submatrix(
    c: Matrix,
    a: Matrix,
    rows=None,
    cols=None,
    mask: Optional[Matrix] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Matrix:
    """``C<mask> accum= A(rows, cols)`` (GrB_Matrix_extract)."""
    ac = _mat_input(a, desc.transpose_a)
    r = _index_array(rows, ac.nrows)
    s = _index_array(cols, ac.ncols)
    _require(c.shape == (r.size, s.size), "output shape", (r.size, s.size), c.shape)
    t = current_backend().extract_matrix(ac, r, s)
    return c._replace(merge_matrix(c.container, t, _mask_cont(mask), accum, desc))


def extract_col(
    w: Vector,
    a: Matrix,
    j: int,
    rows=None,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Vector:
    """``w<mask> accum= A(rows, j)`` — one column (GrB_Col_extract).

    With ``desc.transpose_a`` this extracts row ``j`` instead.
    """
    if desc.transpose_a:
        src = a.container
    else:
        src = a.csc().tcsr  # rows of the CSC view are columns of A
    from ..containers.convert import matrix_row_as_vector

    col = matrix_row_as_vector(src, j)
    idx = _index_array(rows, col.size)
    _require(w.size == idx.size, "output size", idx.size, w.size)
    _check_mask_v(mask, w.size)
    be = current_backend()

    def run(inp, params):
        t = be.extract_vector(inp["u"], idx)
        return merge_vector(inp["out"], t, inp.get("mask"), accum, desc)

    return _lz.emit(
        "extract_v",
        run,
        {
            "u": col,
            "mask": _lz.arg_mask(mask),
            "out": _lz.out_arg(w, mask, accum),
        },
        {"desc": desc},
        (w,),
    )


def extract_row(
    w: Vector,
    a: Matrix,
    i: int,
    cols=None,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT,
) -> Vector:
    """``w<mask> accum= A(i, cols)`` — one row (convenience wrapper)."""
    return extract_col(w, a, i, rows=cols, mask=mask, accum=accum, desc=desc.with_(transpose_a=not desc.transpose_a))
