"""Conversions between sparse container formats.

Frontends and kernels convert between COO (build), CSR (row compute), CSC
(column compute), sparse vectors, and bitmap vectors.  All conversions are
value-preserving and keep the container canonical (sorted, deduplicated).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.operators import BinaryOp
from ..types import GrBType
from .bitmap import BitmapVector
from .coo import COO
from .csc import CSCMatrix
from .csr import CSRMatrix
from .sparsevec import SparseVector

__all__ = [
    "coo_to_csr",
    "csr_to_csc",
    "csc_to_csr",
    "build_matrix",
    "build_vector",
    "sparse_to_bitmap",
    "bitmap_to_sparse",
    "matrix_row_as_vector",
    "vector_as_row_matrix",
    "vector_as_col_matrix",
]


def coo_to_csr(coo: COO, dup: Optional[BinaryOp] = None) -> CSRMatrix:
    """Canonicalise COO (sort + dedupe) and compress to CSR."""
    return CSRMatrix.from_coo(coo.deduped(dup))


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    return CSCMatrix.from_csr(csr)


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    return csc.to_csr()


def build_matrix(
    nrows: int,
    ncols: int,
    rows,
    cols,
    vals,
    typ: Optional[GrBType] = None,
    dup: Optional[BinaryOp] = None,
) -> CSRMatrix:
    """``GrB_Matrix_build`` analogue: triplets -> canonical CSR."""
    return coo_to_csr(COO(nrows, ncols, rows, cols, vals, typ), dup)


def build_vector(
    size: int,
    indices,
    vals,
    typ: Optional[GrBType] = None,
    dup: Optional[BinaryOp] = None,
) -> SparseVector:
    """``GrB_Vector_build`` analogue."""
    return SparseVector.from_lists(size, indices, vals, typ, dup)


def sparse_to_bitmap(sv: SparseVector) -> BitmapVector:
    return BitmapVector.from_sparse(sv)


def bitmap_to_sparse(bv: BitmapVector) -> SparseVector:
    return bv.to_sparse()


def matrix_row_as_vector(csr: CSRMatrix, i: int) -> SparseVector:
    """Extract row ``i`` of a CSR matrix as a sparse vector (copies)."""
    idx, vals = csr.row(i)
    return SparseVector(csr.ncols, idx.copy(), vals.copy(), csr.type)


def vector_as_row_matrix(sv: SparseVector) -> CSRMatrix:
    """View a length-n vector as a 1×n matrix (copies)."""
    indptr = np.array([0, sv.nvals], dtype=np.int64)
    return CSRMatrix(1, sv.size, indptr, sv.indices.copy(), sv.values.copy(), sv.type)


def vector_as_col_matrix(sv: SparseVector) -> CSRMatrix:
    """View a length-n vector as an n×1 matrix (copies)."""
    indptr = np.zeros(sv.size + 1, dtype=np.int64)
    indptr[sv.indices + 1] = 1
    np.cumsum(indptr, out=indptr)
    cols = np.zeros(sv.nvals, dtype=np.int64)
    return CSRMatrix(sv.size, 1, indptr, cols, sv.values.copy(), sv.type)
