"""Skew-aware lane scheduling for the simulated kernels.

GraphBLAST and Gunrock both select a *load-balancing policy* per launch
from the degree distribution: short rows run thread-per-row (CSR-scalar),
medium rows run warp-per-row (CSR-vector), and long/irregular rows run a
merge-path kernel that splits ``nnz + nrows`` work units into equal-sized
partitions regardless of row boundaries.  This module is the simulated
analogue: it bins rows into those three lanes from the degree statistics
already cached on the containers (``row_degrees`` / ``row_nnz_max`` — no
new passes over the matrix), and produces per-lane divergence/thread
schedules the work estimators in ``cuda_sim/kernels.py`` charge through
the existing cost model.

Lane selection is a pure *schedule* decision: the semantic functions are
untouched, so results are bit-identical to the single-lane kernels on
every backend.  Like the reuse layer, the policy has an explicit A/B
switch — ``configure(mode=...)`` / :func:`lanes_disabled` /
:func:`forced` — so benchmarks can measure the lane layer against its own
baseline within one process.

Lane vocabulary:

- ``"scalar"`` — thread-per-row; a warp serialises to its longest row
  (:func:`~repro.gpu.simt.divergence_thread_per_row`).
- ``"vector"`` — warp-per-row; lanes stride the row, short rows waste
  lanes (:func:`~repro.gpu.simt.divergence_warp_per_row`).
- ``"merge"`` — merge-path; equal-work partitions over ``nnz + nrows``
  with per-partition binary searches for the start coordinates.
- ``"binned"`` — the auto policy's mixed schedule: each bin runs its own
  lane, total busy time is the work-weighted combination.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import InvalidValueError
from .simt import divergence_thread_per_row, divergence_warp_per_row

__all__ = [
    "LANES",
    "MODES",
    "LanePlan",
    "LaneSchedule",
    "choose_lanes",
    "configure",
    "current_mode",
    "forced",
    "lanes_disabled",
    "lanes_enabled",
    "merge_partitions",
    "plan_rows",
    "schedule",
]

_IDX = 8  # bytes per index (int64), matching the kernel estimators

#: The three concrete lanes a row bin can run in.
LANES: Tuple[str, ...] = ("scalar", "vector", "merge")

#: Valid policy modes: ``auto`` bins per launch, a lane name forces that
#: lane everywhere, ``off`` keeps each kernel's native single-lane
#: schedule (the pre-lanes baseline).
MODES: Tuple[str, ...] = ("auto", "scalar", "vector", "merge", "off")


class _Config:
    __slots__ = ("mode", "scalar_cutoff", "vector_cutoff", "merge_tile")

    def __init__(self) -> None:
        self.mode = "auto"
        # Rows with <= scalar_cutoff entries: thread-per-row is already
        # balanced.  Rows in (scalar_cutoff, vector_cutoff]: warp-per-row
        # with a row-sized vector width.  Longer rows: merge-path.
        self.scalar_cutoff = 4
        self.vector_cutoff = 256
        # Work units (nnz + nrows) per merge-path partition.
        self.merge_tile = 256


_CONFIG = _Config()


def configure(
    mode: Optional[str] = None,
    scalar_cutoff: Optional[int] = None,
    vector_cutoff: Optional[int] = None,
    merge_tile: Optional[int] = None,
) -> None:
    """Set lane-policy switches (None leaves a switch untouched)."""
    if mode is not None:
        if mode not in MODES:
            raise InvalidValueError(f"unknown lane mode {mode!r}; known: {MODES}")
        _CONFIG.mode = mode
    if scalar_cutoff is not None:
        if scalar_cutoff < 1:
            raise InvalidValueError(f"scalar_cutoff must be >= 1, got {scalar_cutoff}")
        _CONFIG.scalar_cutoff = int(scalar_cutoff)
    if vector_cutoff is not None:
        if vector_cutoff <= _CONFIG.scalar_cutoff:
            raise InvalidValueError(
                f"vector_cutoff must exceed scalar_cutoff "
                f"({_CONFIG.scalar_cutoff}), got {vector_cutoff}"
            )
        _CONFIG.vector_cutoff = int(vector_cutoff)
    if merge_tile is not None:
        if merge_tile < 2:
            raise InvalidValueError(f"merge_tile must be >= 2, got {merge_tile}")
        _CONFIG.merge_tile = int(merge_tile)


def current_mode() -> str:
    return _CONFIG.mode


def lanes_enabled() -> bool:
    return _CONFIG.mode != "off"


@contextmanager
def lanes_disabled() -> Iterator[None]:
    """Run with lane selection off (every kernel keeps its native lane)."""
    prev = _CONFIG.mode
    _CONFIG.mode = "off"
    try:
        yield
    finally:
        _CONFIG.mode = prev


@contextmanager
def forced(mode: str) -> Iterator[None]:
    """Run with the lane policy pinned to ``mode`` (a lane name or
    ``auto``/``off``) — the benchmark A/B harness."""
    if mode not in MODES:
        raise InvalidValueError(f"unknown lane mode {mode!r}; known: {MODES}")
    prev = _CONFIG.mode
    _CONFIG.mode = mode
    try:
        yield
    finally:
        _CONFIG.mode = prev


# ---------------------------------------------------------------------------
# Row binning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LanePlan:
    """Row positions per lane — a partition of ``arange(len(lens))``."""

    scalar: np.ndarray
    vector: np.ndarray
    merge: np.ndarray

    @property
    def label(self) -> str:
        """``"scalar"``/``"vector"``/``"merge"`` when one bin holds every
        row, else ``"binned"`` (empty inputs degrade to ``"scalar"``)."""
        nonempty = [
            name
            for name, rows in (
                ("scalar", self.scalar),
                ("vector", self.vector),
                ("merge", self.merge),
            )
            if rows.size
        ]
        if not nonempty:
            return "scalar"
        if len(nonempty) == 1:
            return nonempty[0]
        return "binned"


def plan_rows(lens: np.ndarray) -> LanePlan:
    """Bin rows by length into the three lanes (an exact partition)."""
    lens = np.asarray(lens)
    sc, vc = _CONFIG.scalar_cutoff, _CONFIG.vector_cutoff
    short = lens <= sc
    long_ = lens > vc
    return LanePlan(
        scalar=np.flatnonzero(short),
        vector=np.flatnonzero(~short & ~long_),
        merge=np.flatnonzero(long_),
    )


def merge_partitions(units: int, tile: Optional[int] = None) -> np.ndarray:
    """Per-partition sizes for ``units`` merge-path work items.

    Partitions are ``<= tile`` units each and differ by at most one unit —
    the equal-work guarantee that makes the merge-path lane immune to row
    skew (a hub row simply spans several partitions).
    """
    total = int(units)
    if total <= 0:
        return np.zeros(0, dtype=np.int64)
    t = int(tile) if tile is not None else _CONFIG.merge_tile
    nparts = max(1, -(-total // t))
    base, rem = divmod(total, nparts)
    out = np.full(nparts, base, dtype=np.int64)
    out[:rem] += 1
    return out


# ---------------------------------------------------------------------------
# Lane choice
# ---------------------------------------------------------------------------


def choose_lanes(
    lens: np.ndarray,
    nnz_max: Optional[int] = None,
    native: str = "scalar",
) -> str:
    """The per-launch lane decision (the analogue of ``choose_direction``).

    ``lens`` is the per-row work distribution (degrees, or FLOPs for
    SpGEMM); ``nnz_max`` is the cached row maximum when available, used as
    a short-circuit so uniform short-row graphs skip binning entirely;
    ``native`` is the kernel's built-in lane, returned when the policy is
    off.  Returns a lane name or ``"binned"``.
    """
    mode = _CONFIG.mode
    if mode == "off":
        return native
    if mode in LANES:
        return mode
    lens = np.asarray(lens)
    if lens.size == 0:
        return native
    if nnz_max is not None and nnz_max <= _CONFIG.scalar_cutoff:
        return "scalar"
    return plan_rows(lens).label


# ---------------------------------------------------------------------------
# Per-lane schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaneSchedule:
    """What a lane decision costs: the divergence factor the cost model
    multiplies busy time by, the launched thread count, and any extra
    bookkeeping reads (as ``combine_coalescing`` parts)."""

    lane: str
    divergence: float
    threads: int
    extra_read_parts: Tuple[Tuple[float, str], ...] = ()


def _pow2_at_least(x: float, lo: int, hi: int) -> int:
    """Smallest power of two >= x, clamped to [lo, hi]."""
    v = lo
    while v < x and v < hi:
        v *= 2
    return v


def _merge_schedule(
    lens: np.ndarray, threads_per_row: int, tile: Optional[int] = None
) -> LaneSchedule:
    """Merge-path lane: equal partitions over ``nnz + nrows`` work units.

    Divergence is the path-length inflation (row-boundary bookkeeping
    items interleaved with the nonzeros) times the partition imbalance —
    which :func:`merge_partitions` bounds at one unit, so balanced
    partitions are rewarded with a factor approaching the pure path
    overhead.  Each partition additionally pays two binary searches over
    ``indptr`` to locate its start coordinate (gather-class reads).
    """
    useful = float(lens.sum())
    units = int(useful) + int(lens.size)
    parts = merge_partitions(units, tile)
    if parts.size == 0:
        return LaneSchedule("merge", 1.0, threads_per_row)
    imbalance = float(parts.max()) / (float(parts.sum()) / parts.size)
    path_inflation = units / max(useful, 1.0)
    probe_depth = float(np.ceil(np.log2(lens.size + 2)))
    extra = (float(parts.size) * 2.0 * _IDX * probe_depth, "gather")
    return LaneSchedule(
        "merge",
        max(1.0, path_inflation * imbalance),
        int(parts.size) * threads_per_row,
        (extra,),
    )


def schedule(
    lens: np.ndarray, lane: str, threads_per_row: int = 32, warp_size: int = 32
) -> LaneSchedule:
    """Divergence/thread schedule for running ``lens`` rows in ``lane``.

    Forced single lanes reproduce the pre-lanes estimators exactly
    (``scalar`` == thread-per-row, ``vector`` == warp-per-row at the full
    warp width); ``binned`` runs each bin in its own lane and combines the
    per-bin divergences weighted by useful work, which preserves the sum
    of per-lane busy times under the cost model's single multiplicative
    divergence term.
    """
    lens = np.asarray(lens, dtype=np.float64)
    if lane == "scalar":
        return LaneSchedule(
            "scalar",
            divergence_thread_per_row(lens, warp_size),
            max(int(lens.size), 1) * threads_per_row,
        )
    if lane == "vector":
        return LaneSchedule(
            "vector",
            divergence_warp_per_row(lens, warp_size),
            max(int(lens.size), 1) * threads_per_row,
        )
    if lane == "merge":
        return _merge_schedule(lens, threads_per_row)
    if lane == "binned":
        return _binned_schedule(lens, threads_per_row, warp_size)
    raise InvalidValueError(f"unknown lane {lane!r}; known: {LANES + ('binned',)}")


def _binned_schedule(
    lens: np.ndarray, threads_per_row: int, warp_size: int
) -> LaneSchedule:
    plan = plan_rows(lens)
    total_useful = float(lens.sum())
    weighted = 0.0
    threads = 0
    extras: List[Tuple[float, str]] = []
    for name, idx in (("scalar", plan.scalar), ("vector", plan.vector), ("merge", plan.merge)):
        if idx.size == 0:
            continue
        sub = lens[idx]
        if name == "scalar":
            d = divergence_thread_per_row(sub, warp_size)
            threads += int(idx.size) * threads_per_row
        elif name == "vector":
            # CSR-vector with an adaptive sub-warp vector width (the CUSP
            # trick): size the cooperating lane group to the bin's mean
            # row so medium rows stop paying full-warp stride waste.
            vw = _pow2_at_least(float(sub.mean()), 2, warp_size)
            d = divergence_warp_per_row(sub, vw)
            threads += int(idx.size) * threads_per_row
        else:
            ms = _merge_schedule(sub, threads_per_row)
            d = ms.divergence
            threads += ms.threads
            extras.extend(ms.extra_read_parts)
        weighted += float(sub.sum()) * d
    # One row→lane indirection read per row (the binning bookkeeping).
    extras.append((float(lens.size) * _IDX, "sequential"))
    divergence = weighted / total_useful if total_useful > 0 else 1.0
    return LaneSchedule(
        "binned", max(1.0, divergence), max(threads, 1), tuple(extras)
    )
