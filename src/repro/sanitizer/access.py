"""Access annotations for device kernels.

Every kernel launch on the simulated GPU declares which buffers it reads
and which it writes (the compute-sanitizer contract: a kernel's pointer
arguments are annotated ``const`` or not).  Declarations are callables on
:class:`~repro.gpu.kernel.Kernel` receiving the launch arguments verbatim
and returning an :class:`Access`; launch-site overrides cover kernels whose
operands travel through thunks (gather/select accounting kernels).

Only *container-like* objects participate in sanitizer tracking: anything
carrying ``version``/``nbytes``/``type`` attributes (``CSRMatrix``,
``CSCMatrix``, ``SparseVector``).  Raw ndarray or scalar operands are
ignored — they are views into a tracked container or launch-setup values,
and the container itself is the unit a real allocator would track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["Access", "is_tracked", "label"]


@dataclass(frozen=True)
class Access:
    """Declared read/write buffer sets of one kernel launch."""

    reads: Tuple[Any, ...] = ()
    writes: Tuple[Any, ...] = ()

    def merged(self, reads: Tuple[Any, ...], writes: Tuple[Any, ...]) -> "Access":
        """This access plus launch-site extras (deduplicated by identity)."""
        if not reads and not writes:
            return self
        r = list(self.reads)
        r.extend(x for x in reads if not any(x is y for y in r))
        w = list(self.writes)
        w.extend(x for x in writes if not any(x is y for y in w))
        return Access(tuple(r), tuple(w))


def is_tracked(obj: Any) -> bool:
    """True for container-like objects the sanitizer tracks."""
    return (
        obj is not None
        and hasattr(obj, "version")
        and hasattr(obj, "nbytes")
        and hasattr(obj, "type")
    )


def label(obj: Any) -> str:
    """Stable human-readable tag for a tracked buffer in diagnostics."""
    try:
        return (
            f"{type(obj).__name__}@{id(obj):#x}"
            f"(v{getattr(obj, 'version', '?')}, {getattr(obj, 'nbytes', '?')}B)"
        )
    except Exception:  # pragma: no cover - defensive
        return f"{type(obj).__name__}@{id(obj):#x}"
