"""The frontend Vector object.

A thin, typed handle over a :class:`~repro.containers.sparsevec.SparseVector`
container.  All *compute* goes through the free functions in
:mod:`repro.core.operations`, which dispatch to the active backend; the
methods here are construction, element access, and bookkeeping — mirroring
GBTL's ``Vector`` template whose heavy lifting lives in the backend.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

import numpy as np

from ..containers.sparsevec import SparseVector
from ..exceptions import (
    DimensionMismatchError,
    EmptyObjectError,
    OutputNotEmptyError,
)
from ..types import FP64, GrBType, from_dtype
from .operators import BinaryOp

__all__ = ["Vector"]


class Vector:
    """A sparse GraphBLAS vector of fixed size and domain.

    Under lazy evaluation (:mod:`repro.lazy`) a handle may carry a pending
    recorded value in ``_lazy``; reading anything value-dependent (entries,
    ``nvals``, exports, equality) forces the tape first.  ``size`` and
    ``type`` are invariant under replacement and never force.
    """

    __slots__ = ("_container", "_lazy", "__weakref__")

    def __init__(self, container: SparseVector):
        self._container = container
        self._lazy = None

    def _force(self) -> SparseVector:
        """Materialise a pending lazy value; returns the current container."""
        lv = self._lazy
        if lv is not None:
            from ..lazy import schedule

            c = schedule.force(lv)
            if self._lazy is lv:
                self._container = c
                self._lazy = None
        return self._container

    def _settle(self) -> None:
        """Barrier before in-place mutation: recorded ops may read us."""
        from ..lazy import schedule

        schedule.sync()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def sparse(cls, typ: GrBType = FP64, size: int = 0) -> "Vector":
        """An empty vector (``GrB_Vector_new`` analogue)."""
        return cls(SparseVector.empty(size, typ))

    @classmethod
    def from_lists(
        cls,
        indices: Iterable[int],
        values: Iterable[Any],
        size: int,
        typ: Optional[GrBType] = None,
        dup: Optional[BinaryOp] = None,
    ) -> "Vector":
        """Build from parallel (index, value) lists."""
        vals = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices, dtype=np.int64)
        if typ is None and vals.dtype.kind not in "biuf":
            raise TypeError(f"cannot infer domain from dtype {vals.dtype}")
        t = typ or from_dtype(vals.dtype)
        return cls(SparseVector.from_lists(size, idx, vals, t, dup))

    @classmethod
    def from_dense(cls, dense, typ: Optional[GrBType] = None) -> "Vector":
        """Build from a dense 1-D array; zeros become implicit."""
        return cls(SparseVector.from_dense(np.asarray(dense), typ))

    @classmethod
    def full(cls, value: Any, size: int, typ: Optional[GrBType] = None) -> "Vector":
        """All ``size`` positions present with the same value."""
        from ..types import from_value

        t = typ or from_value(value)
        return cls(SparseVector.full(size, value, t))

    def dup(self) -> "Vector":
        """Deep copy (``GrB_Vector_dup``)."""
        return Vector(self._force().copy())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def container(self) -> SparseVector:
        return self._force()

    @property
    def size(self) -> int:
        return self._container.size

    @property
    def nvals(self) -> int:
        return self._force().nvals

    @property
    def type(self) -> GrBType:
        return self._container.type

    def get(self, i: int, default: Optional[Any] = None) -> Any:
        """Element at ``i`` or ``default`` when implicit."""
        v = self._force().get(i)
        return default if v is None else v

    def __getitem__(self, i: int) -> Any:
        v = self._force().get(i)
        if v is None:
            raise EmptyObjectError(f"no stored value at index {i}")
        return v

    def __setitem__(self, i: int, value: Any) -> None:
        self.set_element(i, value)

    def __contains__(self, i: int) -> bool:
        return self._force().get(i) is not None

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def build(
        self,
        indices: Iterable[int],
        values: Iterable[Any],
        dup: Optional[BinaryOp] = None,
    ) -> "Vector":
        """``GrB_Vector_build``: populate an empty vector from lists."""
        self._settle()
        if self.nvals:
            raise OutputNotEmptyError("build target must be empty")
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices, dtype=np.int64)
        vals = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        self._container = SparseVector.from_lists(self.size, idx, vals, self.type, dup)
        return self

    def set_element(self, i: int, value: Any) -> "Vector":
        """Insert or overwrite one element (``GrB_Vector_setElement``)."""
        self._settle()
        c = self._container
        value = self.type.cast(value)
        k = int(np.searchsorted(c.indices, i))
        if k < c.nvals and c.indices[k] == i:
            c.values[k] = value  # gbsan: ok(container-mutation) -- setElement overwrite; bump_version below flips the dirty bit
            # In-place overwrite: bump the mutation counter so cached aux
            # structures and device-resident copies are invalidated.
            c.bump_version()
            return self
        if not 0 <= i < c.size:
            from ..exceptions import IndexOutOfBoundsError

            raise IndexOutOfBoundsError(f"index {i} outside [0, {c.size})")
        self._container = SparseVector(
            c.size,
            np.insert(c.indices, k, i),
            np.insert(c.values, k, value),
            c.type,
        )
        return self

    def remove_element(self, i: int) -> "Vector":
        """Delete one element if present (``GrB_Vector_removeElement``)."""
        self._settle()
        c = self._container
        k = int(np.searchsorted(c.indices, i))
        if k < c.nvals and c.indices[k] == i:
            self._container = SparseVector(
                c.size, np.delete(c.indices, k), np.delete(c.values, k), c.type
            )
        return self

    def clear(self) -> "Vector":
        """Drop all stored entries, keeping size and domain."""
        self._settle()
        self._container = SparseVector.empty(self.size, self.type)
        return self

    def resize(self, size: int) -> "Vector":
        """Grow or shrink; entries beyond a smaller size are dropped."""
        self._settle()
        c = self._container
        if size < c.size:
            keep = c.indices < size
            self._container = SparseVector(size, c.indices[keep], c.values[keep], c.type)
        else:
            self._container = SparseVector(size, c.indices, c.values, c.type)
        return self

    def _replace(self, container: SparseVector) -> "Vector":
        """Internal: install a merged result (used by operations)."""
        if container.size != self.size:
            raise DimensionMismatchError(
                "replacement container", expected=self.size, actual=container.size
            )
        self._container = container
        return self

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_lists(self) -> Tuple[List[int], List[Any]]:
        """(indices, values) as Python lists (``extractTuples``)."""
        c = self._force()
        return list(map(int, c.indices)), list(c.values)

    def to_dense(self, fill: Any = 0) -> np.ndarray:
        return self._force().to_dense(fill)

    def indices_array(self) -> np.ndarray:
        """Stored indices (read-only convention)."""
        return self._force().indices

    def values_array(self) -> np.ndarray:
        """Stored values (read-only convention)."""
        return self._force().values

    # ------------------------------------------------------------------
    # Operator sugar (allocating convenience wrappers over operations)
    # ------------------------------------------------------------------

    def __add__(self, other: "Vector") -> "Vector":
        """Elementwise union with PLUS into a fresh vector."""
        from . import operations as _ops
        from .operators import PLUS

        out = Vector.sparse(self.type, self.size)
        return _ops.ewise_add(out, self, other, PLUS)

    def __mul__(self, other: "Vector") -> "Vector":
        """Elementwise intersection with TIMES into a fresh vector."""
        from . import operations as _ops
        from .operators import TIMES

        out = Vector.sparse(self.type, self.size)
        return _ops.ewise_mult(out, self, other, TIMES)

    def __matmul__(self, other) -> "Vector":
        """``v @ A`` — vxm over (PLUS, TIMES) into a fresh vector."""
        from . import operations as _ops
        from .semiring import PLUS_TIMES

        out = Vector.sparse(self.type, other.ncols)
        return _ops.vxm(out, self, other, PLUS_TIMES)

    def reduce(self, monoid=None) -> Any:
        """Fold all stored values (default: PLUS)."""
        from . import operations as _ops
        from .monoid import PLUS_MONOID

        return _ops.reduce(self, monoid or PLUS_MONOID)

    def __eq__(self, other: Any) -> bool:
        """Structural + value equality (same size, entries, domain kind)."""
        if not isinstance(other, Vector):
            return NotImplemented
        a, b = self._force(), other._force()
        return (
            a.size == b.size
            and a.nvals == b.nvals
            and bool(np.array_equal(a.indices, b.indices))
            and bool(np.array_equal(a.values, b.values))
        )

    def __hash__(self):  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector(size={self.size}, nvals={self.nvals}, {self.type.name})"
