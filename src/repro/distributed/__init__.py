"""Multi-device partitioning, communication, and scheduling.

This package is the substrate of the ``multi_sim`` backend: block-row
sharded containers (:mod:`.partition`), a P2P link/topology model
(:mod:`.topology`), collective and sparse-exchange communication
primitives with byte accounting (:mod:`.comm`), and a per-device
scheduler owning one simulated device + stream per shard
(:mod:`.cluster`).

None of it is GraphBLAS-specific: the partitioned containers wrap the
ordinary :class:`~repro.containers.csr.CSRMatrix` /
:class:`~repro.containers.sparsevec.SparseVector`, and the cluster issues
shard-local work through the existing cuda_sim kernel layer.  See
``docs/distributed.md`` for the accounting semantics.
"""

from .comm import CommModel, CommStats
from .cluster import ClusterKernelGraph, SimCluster
from .partition import (
    PartitionedCSR,
    PartitionedVector,
    degree_balanced_splitters,
    equal_rows_splitters,
)
from .topology import DGX_NVLINK, PCIE_ONLY, LinkSpec, Topology

__all__ = [
    "CommModel",
    "CommStats",
    "ClusterKernelGraph",
    "SimCluster",
    "PartitionedCSR",
    "PartitionedVector",
    "degree_balanced_splitters",
    "equal_rows_splitters",
    "LinkSpec",
    "Topology",
    "DGX_NVLINK",
    "PCIE_ONLY",
]
