"""GraphBLAS type system.

The GraphBLAS specification defines eleven predefined scalar domains.  GBTL
uses C++ template parameters for these; we model them as :class:`GrBType`
descriptors that wrap a NumPy dtype and carry the spec name, so containers can
store values in packed NumPy arrays while the frontend reasons about domains
and promotion the way the spec does.

Promotion follows the C rules the spec inherits (and NumPy implements):
``promote(INT32, FP32) == FP32`` etc.  ``BOOL`` participates as the weakest
domain.  User-defined types (``GrB_UDT``) are supported via
:func:`register_type` with ``object`` dtype storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

__all__ = [
    "GrBType",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "ALL_TYPES",
    "promote",
    "from_dtype",
    "from_value",
    "register_type",
    "lookup",
]


@dataclass(frozen=True)
class GrBType:
    """A GraphBLAS scalar domain backed by a NumPy dtype.

    Attributes
    ----------
    name:
        Spec-style name (``"FP64"``, ``"INT32"``...).
    dtype:
        The NumPy dtype used for packed storage.
    rank:
        Promotion rank; higher ranks win in :func:`promote` among the same
        kind, and float beats int beats bool across kinds.
    """

    name: str
    dtype: np.dtype = field(compare=False)
    rank: int = field(compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def is_boolean(self) -> bool:
        return self.dtype.kind == "b"

    @property
    def is_integral(self) -> bool:
        return self.dtype.kind in ("i", "u")

    @property
    def is_signed(self) -> bool:
        return self.dtype.kind == "i"

    @property
    def is_floating(self) -> bool:
        return self.dtype.kind == "f"

    @property
    def nbytes(self) -> int:
        return self.dtype.itemsize

    def cast(self, value: Any) -> Any:
        """Cast a Python/NumPy scalar into this domain (C-style truncation)."""
        return self.dtype.type(value)

    def zeros(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GrBType({self.name})"


BOOL = GrBType("BOOL", np.bool_, 0)
INT8 = GrBType("INT8", np.int8, 1)
UINT8 = GrBType("UINT8", np.uint8, 1)
INT16 = GrBType("INT16", np.int16, 2)
UINT16 = GrBType("UINT16", np.uint16, 2)
INT32 = GrBType("INT32", np.int32, 3)
UINT32 = GrBType("UINT32", np.uint32, 3)
INT64 = GrBType("INT64", np.int64, 4)
UINT64 = GrBType("UINT64", np.uint64, 4)
FP32 = GrBType("FP32", np.float32, 5)
FP64 = GrBType("FP64", np.float64, 6)

ALL_TYPES = (
    BOOL,
    INT8,
    UINT8,
    INT16,
    UINT16,
    INT32,
    UINT32,
    INT64,
    UINT64,
    FP32,
    FP64,
)

_BY_NAME: Dict[str, GrBType] = {t.name: t for t in ALL_TYPES}
_BY_DTYPE: Dict[np.dtype, GrBType] = {t.dtype: t for t in ALL_TYPES}


def register_type(name: str, dtype: Any, rank: int = 100) -> GrBType:
    """Register a user-defined type (``GrB_UDT`` analogue).

    User types promote above every predefined type; mixing two distinct user
    types raises in :func:`promote`.
    """
    t = GrBType(name, np.dtype(dtype), rank)
    if name in _BY_NAME:
        raise ValueError(f"type {name!r} already registered")
    _BY_NAME[name] = t
    _BY_DTYPE.setdefault(t.dtype, t)
    return t


def lookup(name: str) -> GrBType:
    """Look a type up by its spec name (``"FP64"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown GraphBLAS type {name!r}") from None


def from_dtype(dtype: Any) -> GrBType:
    """Map a NumPy dtype (or anything convertible) to a GraphBLAS type."""
    dt = np.dtype(dtype)
    try:
        return _BY_DTYPE[dt]
    except KeyError:
        raise KeyError(f"no GraphBLAS type for dtype {dt}") from None


def from_value(value: Any) -> GrBType:
    """Infer the domain of a Python scalar (bool < int < float)."""
    if isinstance(value, (bool, np.bool_)):
        return BOOL
    if isinstance(value, (int, np.integer)):
        return INT64
    if isinstance(value, (float, np.floating)):
        return FP64
    raise TypeError(f"cannot infer GraphBLAS type for {type(value).__name__}")


def promote(a: GrBType, b: GrBType) -> GrBType:
    """Return the common domain of ``a`` and ``b``.

    Uses NumPy's C-compatible promotion for the predefined domains, which
    matches the behaviour the GraphBLAS spec prescribes for mixed-domain
    operations.  Identical types short-circuit.
    """
    if a is b or a == b:
        return a
    dt = np.promote_types(a.dtype, b.dtype)
    try:
        return _BY_DTYPE[dt]
    except KeyError:
        raise TypeError(f"cannot promote {a.name} with {b.name}") from None
