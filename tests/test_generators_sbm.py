"""Stochastic block model generator."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms import is_symmetric, label_propagation, modularity
from repro.generators import stochastic_block_model


class TestSBM:
    def test_vertex_count_and_symmetry(self):
        g = stochastic_block_model([10, 20, 5], 0.4, 0.05, seed=0)
        assert g.nrows == 35
        assert is_symmetric(g)

    def test_intra_denser_than_inter(self):
        g = stochastic_block_model([30, 30], 0.4, 0.02, seed=1)
        cc = g.container
        rows = np.repeat(np.arange(60, dtype=np.int64), cc.row_degrees())
        same_block = (rows < 30) == (cc.indices < 30)
        intra = np.count_nonzero(same_block)
        inter = np.count_nonzero(~same_block)
        assert intra > 3 * inter

    def test_p_zero_gives_disconnected_blocks(self):
        g = stochastic_block_model([15, 15], 0.5, 0.0, seed=2)
        assert gb.algorithms.component_count(g) >= 2

    def test_p_one_intra_complete(self):
        g = stochastic_block_model([6, 6], 1.0, 0.0, seed=3)
        # Each block becomes a clique: 2 * C(6,2) per block stored entries.
        assert g.nvals == 2 * (15 + 15)

    def test_deterministic(self):
        a = stochastic_block_model([10, 10], 0.3, 0.05, seed=9)
        b = stochastic_block_model([10, 10], 0.3, 0.05, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(gb.InvalidValueError):
            stochastic_block_model([10], 1.5, 0.1)
        with pytest.raises(gb.InvalidValueError):
            stochastic_block_model([10], 0.5, -0.1)
        with pytest.raises(gb.InvalidValueError):
            stochastic_block_model([-5], 0.5, 0.1)

    def test_empty_blocks(self):
        g = stochastic_block_model([], 0.5, 0.5, seed=0)
        assert g.nrows == 0

    def test_lpa_recovers_planted_partition(self):
        g = stochastic_block_model([25, 25, 25], 0.5, 0.01, seed=4)
        labels = label_propagation(g)
        lv = labels.to_dense(-1)
        # Each planted block should map to (at most a couple of) labels and
        # the split should have high modularity.
        assert modularity(g, labels) > 0.4
        for b in range(3):
            block = lv[b * 25 : (b + 1) * 25]
            # Dominant label covers most of the block.
            _, counts = np.unique(block, return_counts=True)
            assert counts.max() >= 20

    def test_weighted(self):
        g = stochastic_block_model([10, 10], 0.4, 0.1, seed=5, weighted=True)
        vals = np.asarray(g.to_lists()[2])
        assert vals.min() >= 1.0 and vals.max() < 256.0
