"""Measurement harness for the benchmark suite.

Two kinds of time coexist in this reproduction (see DESIGN.md):

- **wall time** — real measured Python time, meaningful for the ``reference``
  and ``cpu`` backends;
- **simulated time** — the GPU cost model's clock, meaningful for the
  ``cuda_sim`` backend (its wall time is just the simulation's overhead).

:func:`time_operation` runs a callable under a named backend and returns the
appropriate measurement for that backend, so benchmark tables can put all
three backends in the same row without mixing units dishonestly: every value
is "time for this backend to do the work", wall-clock for real backends and
modeled device time for the simulated one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..backends.dispatch import get_backend, use_backend
from ..gpu.device import get_device

__all__ = ["Measurement", "time_operation", "simulated_gpu_time"]


@dataclass(frozen=True)
class Measurement:
    """One timed run."""

    backend: str
    seconds: float  # wall or simulated, per backend kind
    simulated: bool
    result: Any = None
    kernel_launches: int = 0
    transfer_seconds: float = 0.0
    h2d_bytes: float = 0.0

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6


def simulated_gpu_time(fn: Callable[[], Any], include_transfers: bool = True) -> Measurement:
    """Run ``fn`` under the cuda_sim backend; report modeled device time."""
    dev = get_device()
    backend = get_backend("cuda_sim")
    # Fresh accounting for this run.
    backend.evict_all()
    dev.reset()
    with use_backend("cuda_sim"):
        result = fn()
    prof = dev.profiler
    kernel_us = prof.kernel_time_us
    transfer_us = prof.transfer_time_us
    total_us = kernel_us + (transfer_us if include_transfers else 0.0)
    return Measurement(
        backend="cuda_sim",
        seconds=total_us / 1e6,
        simulated=True,
        result=result,
        kernel_launches=prof.launch_count,
        transfer_seconds=transfer_us / 1e6,
        h2d_bytes=prof.h2d_bytes,
    )


def time_operation(
    backend: str,
    fn: Callable[[], Any],
    repeat: int = 1,
    include_transfers: bool = True,
) -> Measurement:
    """Best-of-``repeat`` timing of ``fn`` under ``backend``.

    For ``cuda_sim`` the modeled device time is returned (identical across
    repeats by construction, so one run suffices).
    """
    if backend == "cuda_sim":
        return simulated_gpu_time(fn, include_transfers)
    best = float("inf")
    result = None
    with use_backend(backend):
        for _ in range(max(repeat, 1)):
            t0 = time.perf_counter()
            result = fn()
            dt = time.perf_counter() - t0
            best = min(best, dt)
    return Measurement(backend=backend, seconds=best, simulated=False, result=result)
