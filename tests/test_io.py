"""MatrixMarket and edge-list I/O round-trips."""

import io

import numpy as np
import pytest

import repro as gb
from repro.io import (
    read_edgelist,
    read_matrix_market,
    write_edgelist,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_roundtrip_real(self, tmp_path):
        m = gb.Matrix.from_lists([0, 1, 2], [1, 2, 0], [1.5, 2.25, -3.0], 3, 3)
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path)
        back = read_matrix_market(path)
        assert back == m

    def test_roundtrip_integer(self, tmp_path):
        m = gb.Matrix.from_lists([0, 1], [0, 1], [7, -3], 2, 2, gb.INT64)
        path = tmp_path / "i.mtx"
        write_matrix_market(m, path)
        back = read_matrix_market(path)
        assert back.type is gb.INT64 and back == m

    def test_roundtrip_pattern(self, tmp_path):
        m = gb.Matrix.from_lists([0, 1], [1, 0], [True, True], 2, 2, gb.BOOL)
        path = tmp_path / "p.mtx"
        write_matrix_market(m, path)
        back = read_matrix_market(path)
        assert back.type is gb.BOOL and back.nvals == 2

    def test_read_symmetric_expands(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5.0
3 3 1.0
"""
        m = read_matrix_market(io.StringIO(text))
        assert m.get(1, 0) == 5.0 and m.get(0, 1) == 5.0
        assert m.get(2, 2) == 1.0
        assert m.nvals == 3

    def test_read_with_comments(self):
        text = """%%MatrixMarket matrix coordinate real general
% a comment
% another
2 2 1
1 2 4.0
"""
        m = read_matrix_market(io.StringIO(text))
        assert m.get(0, 1) == 4.0

    def test_write_includes_comment(self, tmp_path):
        m = gb.Matrix.identity(2)
        path = tmp_path / "c.mtx"
        write_matrix_market(m, path, comment="hello\nworld")
        content = path.read_text()
        assert "% hello" in content and "% world" in content

    def test_bad_header_rejected(self):
        with pytest.raises(gb.InvalidValueError):
            read_matrix_market(io.StringIO("garbage\n1 1 0\n"))

    def test_unsupported_field_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        with pytest.raises(gb.InvalidValueError):
            read_matrix_market(io.StringIO(text))

    def test_truncated_file_rejected(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(gb.InvalidValueError):
            read_matrix_market(io.StringIO(text))

    def test_type_override(self):
        text = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.7\n"
        m = read_matrix_market(io.StringIO(text), typ=gb.INT32)
        assert m.type is gb.INT32 and m.get(0, 0) == 2

    def test_one_based_conversion(self):
        text = "%%MatrixMarket matrix coordinate real general\n3 3 1\n3 1 9.0\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.get(2, 0) == 9.0


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = gb.generators.erdos_renyi_gnp(20, 0.2, seed=1, weighted=True)
        path = tmp_path / "g.tsv"
        write_edgelist(g, path)
        back = read_edgelist(path, n=20)
        assert back == g

    def test_read_without_weights(self):
        text = "0 1\n1 2\n"
        g = read_edgelist(io.StringIO(text))
        assert g.nrows == 3 and g.get(0, 1) == 1.0

    def test_read_with_weights(self):
        text = "0 1 2.5\n1 0 3.5\n"
        g = read_edgelist(io.StringIO(text))
        assert g.get(0, 1) == 2.5 and g.get(1, 0) == 3.5

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0 1\n# mid\n1 2\n"
        g = read_edgelist(io.StringIO(text))
        assert g.nvals == 2

    def test_undirected_symmetrises(self):
        text = "0 1 5.0\n"
        g = read_edgelist(io.StringIO(text), directed=False)
        assert g.get(1, 0) == 5.0

    def test_explicit_n(self):
        g = read_edgelist(io.StringIO("0 1\n"), n=10)
        assert g.nrows == 10

    def test_bad_line_rejected(self):
        with pytest.raises(gb.InvalidValueError):
            read_edgelist(io.StringIO("0\n"))

    def test_custom_delimiter(self):
        g = read_edgelist(io.StringIO("0,1,2.0\n"), delimiter=",")
        assert g.get(0, 1) == 2.0

    def test_write_without_weights(self, tmp_path):
        g = gb.Matrix.from_lists([0], [1], [3.0], 2, 2)
        path = tmp_path / "nw.tsv"
        write_edgelist(g, path, weights=False)
        assert path.read_text() == "0\t1\n"

    def test_empty_graph(self):
        g = read_edgelist(io.StringIO(""), n=5)
        assert g.nrows == 5 and g.nvals == 0
