"""Watts–Strogatz small-world graphs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from ..types import FP64, GrBType
from .common import finalize_edges

__all__ = ["watts_strogatz"]


def watts_strogatz(
    n: int,
    k: int,
    p: float,
    seed: Optional[int] = None,
    weighted: bool = False,
    typ: GrBType = FP64,
) -> Matrix:
    """Ring lattice (each vertex to its k nearest neighbours) with rewiring.

    ``k`` must be even; each of the k/2 clockwise edges per vertex is
    rewired to a uniformly random endpoint with probability ``p``.
    """
    if k % 2 != 0 or k < 0:
        raise InvalidValueError(f"k must be even and nonnegative, got {k}")
    if not 0.0 <= p <= 1.0:
        raise InvalidValueError(f"p must be in [0, 1], got {p}")
    if n <= k:
        raise InvalidValueError(f"need n > k, got n={n}, k={k}")
    rng = np.random.default_rng(seed)
    base = np.arange(n, dtype=np.int64)
    src_list, dst_list = [], []
    for off in range(1, k // 2 + 1):
        src_list.append(base)
        dst_list.append((base + off) % n)
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    rewire = rng.random(src.size) < p
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, int(rewire.sum()), dtype=np.int64)
    return finalize_edges(n, src, dst, weighted=weighted, typ=typ, seed=seed)
