"""Finding model, JSON serialisation, and the checked-in baseline.

gbcheck reports are lists of :class:`Finding`.  Each finding carries a
*fingerprint* that is stable across unrelated edits: it hashes the path,
rule, and symbol — but **not** the line number — so a baseline entry keeps
matching when code above the finding moves it a few lines.  The baseline
workflow (``tools/gbcheck.py --baseline``) fails CI only on findings whose
fingerprint is absent from the checked-in baseline file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Set

__all__ = ["Finding", "Baseline", "findings_to_json", "findings_from_json"]


@dataclass(frozen=True)
class Finding:
    """One gbcheck violation.

    ``path`` is rooted at ``repro/`` (e.g. ``backends/cuda_sim/backend.py``)
    so reports are location-independent; ``symbol`` is the enclosing
    function/kernel qualname when known, which anchors the fingerprint.
    """

    path: str
    line: int
    rule: str
    message: str
    symbol: str = ""

    def __str__(self) -> str:
        loc = f"{self.path}:{self.line}"
        sym = f" ({self.symbol})" if self.symbol else ""
        return f"{loc}: [{self.rule}]{sym} {self.message}"

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline diff."""
        head = self.message.split(";")[0].strip()
        key = f"{self.path}|{self.rule}|{self.symbol}|{head}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Render findings as the stable JSON report format."""
    payload = {
        "tool": "gbcheck",
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def findings_from_json(text: str) -> List[Finding]:
    """Parse a JSON report back into findings (fingerprints recomputed)."""
    payload = json.loads(text)
    out: List[Finding] = []
    for row in payload.get("findings", []):
        out.append(
            Finding(
                path=str(row["path"]),
                line=int(row.get("line", 0)),
                rule=str(row["rule"]),
                message=str(row["message"]),
                symbol=str(row.get("symbol", "")),
            )
        )
    return out


@dataclass
class Baseline:
    """A set of accepted finding fingerprints.

    The baseline is the escape hatch for findings that are understood but
    not yet fixed: CI fails only on *new* findings.  An empty baseline means
    the tree is expected to be clean.
    """

    fingerprints: Set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        rows: Iterable[Dict[str, Any]] = payload.get("findings", [])
        fps = {str(r["fingerprint"]) for r in rows if "fingerprint" in r}
        fps |= {str(fp) for fp in payload.get("fingerprints", [])}
        return cls(fingerprints=fps)

    def save(self, path: Path, findings: Sequence[Finding]) -> None:
        """Write ``findings`` as the new baseline (used by --update-baseline)."""
        payload = {
            "tool": "gbcheck-baseline",
            "findings": [f.to_dict() for f in sorted(findings, key=str)],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def new_findings(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings whose fingerprint is not baselined — the CI gate fails on these."""
        return [f for f in findings if f.fingerprint not in self.fingerprints]
