"""Rule 3 plant: observing raw container state with no forcing point.

``swap_unforced`` swaps a container's arrays (``install_arrays``) and
``peek_raw`` reads the ``._container`` slot — neither is dominated by a
force/settle, so a pending lazy tape could still rewrite the state being
observed; gbcheck flags both (``forcing-point-missing``).  The ``*_forced``
twins settle first.  At runtime the same elision — swapping host arrays
under a warm device without settling/refreshing — is what gbsan reports as
a ``stale-read`` when the next kernel consumes the cached device copy.
"""


def swap_unforced(base, arrays):
    # BUG: nothing forces pending device work before the host-side swap.
    base.install_arrays(*arrays)
    return base


def swap_forced(m, base, arrays):
    m._settle()
    base.install_arrays(*arrays)
    return base


def peek_raw(v):
    # BUG: reads the raw slot, bypassing the forcing .container property.
    return v._container


def peek_forced(v):
    v._settle()
    return v._container
