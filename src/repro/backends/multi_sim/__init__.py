"""Multi-device partitioned simulated backend."""

from .backend import MultiSimBackend

__all__ = ["MultiSimBackend"]
