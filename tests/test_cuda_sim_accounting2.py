"""cuda_sim accounting for select, indexed apply, extract, assign, and the
masked SpGEMM kernel — the later additions to the device kernel set."""

import numpy as np
import pytest

import repro as gb
from repro.backends.dispatch import get_backend, use_backend
from repro.core import operations as ops
from repro.core.assign import assign_scalar
from repro.core.descriptor import STRUCTURE_MASK
from repro.core.operators import ROWINDEX, TRIL, VALUEGT
from repro.core.semiring import PLUS_PAIR
from repro.gpu.device import get_device, reset_device


@pytest.fixture(autouse=True)
def fresh_device():
    reset_device()
    get_backend("cuda_sim").evict_all()
    yield
    reset_device()
    get_backend("cuda_sim").evict_all()


def kernel_names():
    # Strip "[lane]" load-balancing labels — these tests pin which kernels
    # launch, not which lane the balancer picked.
    return {
        r.name.split("[", 1)[0]
        for r in get_device().profiler.records
        if r.kind == "kernel"
    }


class TestSelectAccounting:
    def test_select_vector_launches_kernel(self):
        u = gb.Vector.from_dense(np.arange(64, dtype=float))
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 64)
            ops.select(w, u, VALUEGT, thunk=10.0)
        assert "select_compact" in kernel_names()
        assert w.nvals == 53

    def test_select_matrix_launches_kernel(self):
        a = gb.Matrix.from_dense(np.ones((8, 8)))
        with use_backend("cuda_sim"):
            c = gb.Matrix.sparse(gb.FP64, 8, 8)
            ops.select(c, a, TRIL, thunk=-1)
        assert "select_compact" in kernel_names()

    def test_indexed_apply_launches_kernel(self):
        u = gb.Vector.from_lists([3, 7], [1.0, 1.0], 10)
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.INT64, 10)
            ops.apply(w, u, ROWINDEX, thunk=0)
        assert "select_compact" in kernel_names()
        assert w.to_lists() == ([3, 7], [3, 7])

    def test_select_time_scales_with_nvals(self):
        def sim(n):
            reset_device()
            get_backend("cuda_sim").evict_all()
            u = gb.Vector.from_dense(np.arange(n, dtype=float) + 1)
            with use_backend("cuda_sim"):
                w = gb.Vector.sparse(gb.FP64, n)
                ops.select(w, u, VALUEGT, thunk=0.0)
            return get_device().profiler.kernel_time_us

        assert sim(1 << 16) > sim(1 << 8)


class TestMaskedSpgemmAccounting:
    def test_masked_kernel_used_and_cheaper(self):
        g = gb.generators.rmat(scale=9, edge_factor=12, seed=2)
        from repro.algorithms.triangles import lower_triangle

        l = lower_triangle(g)

        def sim(masked):
            reset_device()
            get_backend("cuda_sim").evict_all()
            with use_backend("cuda_sim"):
                c = gb.Matrix.sparse(gb.INT64, g.nrows, g.ncols)
                if masked:
                    ops.mxm(c, l, l, PLUS_PAIR, mask=l, desc=STRUCTURE_MASK)
                else:
                    ops.mxm(c, l, l, PLUS_PAIR)
            names = kernel_names()
            return get_device().profiler.kernel_time_us, names

        t_masked, names_m = sim(True)
        t_full, names_f = sim(False)
        assert "spgemm_hash_masked" in names_m
        assert "spgemm_hash" in names_f and "spgemm_hash_masked" not in names_f
        assert t_masked < t_full

    def test_complement_mask_falls_back_to_full(self):
        a = gb.Matrix.from_dense(np.ones((6, 6)))
        mask = gb.Matrix.from_lists([0], [0], [True], 6, 6, gb.BOOL)
        with use_backend("cuda_sim"):
            c = gb.Matrix.sparse(gb.FP64, 6, 6)
            ops.mxm(c, a, a, gb.SEMIRINGS["PLUS_TIMES"], mask=mask, desc=gb.COMP_MASK)
        assert "spgemm_hash" in kernel_names()


class TestAssignExtractAccounting:
    def test_assign_scatter_charged(self):
        w = gb.Vector.sparse(gb.FP64, 100)
        with use_backend("cuda_sim"):
            assign_scalar(w, 1.0, indices=np.arange(50))
        assert "scatter_assign" in kernel_names()

    def test_extract_gather_charged(self):
        u = gb.Vector.full(1.0, 100)
        with use_backend("cuda_sim"):
            w = gb.Vector.sparse(gb.FP64, 10)
            ops.extract(w, u, np.arange(10))
        assert "gather_extract" in kernel_names()

    def test_real_backends_unaffected_by_charge_hooks(self):
        # charge_assign is a no-op outside cuda_sim: no device records.
        w = gb.Vector.sparse(gb.FP64, 10)
        with use_backend("cpu"):
            assign_scalar(w, 1.0, indices=[0, 1])
        assert not get_device().profiler.records
