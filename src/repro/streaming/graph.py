"""Mutable graph front: batched edge churn over a static CSR.

:class:`DynamicGraph` wraps a frontend :class:`~repro.core.matrix.Matrix`
and accepts :class:`~repro.streaming.batch.EdgeBatch` mutations.  Pending
ops live in a :class:`~repro.streaming.overlay.DeltaOverlay` — point reads
(:meth:`DynamicGraph.has_edge` / :meth:`edge_value`) merge base + delta on
the fly, so applying a batch is O(batch) and never rewrites the CSR.

**Compaction** folds the overlay into the base CSR in place
(:meth:`~repro.containers.csr.CSRMatrix.install_arrays` preserves the
container's identity and bumps its version, so aux caches, residency
entries, multi_sim partition caches, and lazy-tape fingerprints all
invalidate through the version stamp).  On ``cuda_sim`` the compaction is
charged as a delta H2D upload plus one merge kernel; on ``multi_sim`` each
shard uploads and merges its slice of the delta with an all-to-all to
redistribute moved rows; host backends install for free.  Compaction runs
eagerly when the pending delta crosses the :class:`CompactionPolicy`
threshold, and implicitly whenever :attr:`DynamicGraph.matrix` is read —
GraphBLAS kernels always see a fully materialised CSR.

**Views** (the incremental algorithms in :mod:`repro.streaming.incremental`)
attach via :meth:`DynamicGraph.attach`; they are notified *before* each
batch lands so they can probe pre-batch state (is this delete effective?)
and decide between frontier seeding and full recompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backends import current_backend
from ..core.matrix import Matrix
from ..exceptions import InvalidValueError
from ..gpu.costmodel import KernelWork
from ..gpu.kernel import Kernel, LaunchConfig, charge_transfer, launch
from ..sanitizer.access import Access
from .batch import EdgeBatch
from .overlay import DeltaOverlay, merge_overlay

__all__ = ["CompactionPolicy", "StreamStats", "DynamicGraph"]


# Device-side merge of base CSR + delta COO (cuda_sim): one pass over
# base.nvals + len(overlay) items, producing the compacted arrays.  The
# semantic function is the same vectorised three-way merge the host path
# uses, so every backend materialises bit-identical CSR arrays.
# gbsan: ok(access-over-declared) -- run is functional; the declared write covers the caller's install_arrays swap so gbsan invalidates base residency at the launch
COMPACT_MERGE = Kernel(
    "stream_compact_merge",
    run=lambda base, overlay: merge_overlay(base, overlay),
    work=lambda base, overlay: KernelWork(
        flops=2.0 * (base.nvals + len(overlay)),
        bytes_read=float(base.nbytes + overlay.nbytes),
        bytes_written=float(base.nbytes + overlay.nbytes),
    ),
    accesses=lambda base, overlay: Access(reads=(base,), writes=(base,)),
)

# Pricing-only shard merge (multi_sim): each device merges its row slice of
# the delta; the semantics ran once host-side (same arrays everywhere).
COMPACT_SHARD = Kernel(
    "stream_compact_shard",
    run=lambda n_items, item_bytes: None,
    work=lambda n_items, item_bytes: KernelWork(
        flops=2.0 * n_items,
        bytes_read=float(n_items) * item_bytes,
        bytes_written=float(n_items) * item_bytes,
    ),
)


@dataclass(frozen=True)
class CompactionPolicy:
    """When does the pending delta get folded into the base CSR?

    Auto-compaction triggers when the overlay holds more than
    ``max_delta_fraction`` of the base nnz **and** at least
    ``min_delta_ops`` pending ops (the floor keeps tiny graphs from
    compacting on every batch).  ``never`` disables auto-compaction —
    reads through :attr:`DynamicGraph.matrix` still compact on demand.
    """

    max_delta_fraction: float = 0.25
    min_delta_ops: int = 64
    never: bool = False

    def should_compact(self, pending_ops: int, base_nvals: int) -> bool:
        if self.never or pending_ops == 0:
            return False
        if pending_ops < self.min_delta_ops:
            return False
        return pending_ops > self.max_delta_fraction * max(base_nvals, 1)


@dataclass
class StreamStats:
    """Mutation-side counters (views keep their own recompute stats)."""

    batches: int = 0
    inserts: int = 0
    deletes: int = 0
    compactions: int = 0
    auto_compactions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "compactions": self.compactions,
            "auto_compactions": self.auto_compactions,
        }


class DynamicGraph:
    """A square adjacency matrix under batched edge churn."""

    def __init__(
        self, matrix: Matrix, policy: Optional[CompactionPolicy] = None
    ) -> None:
        if matrix.nrows != matrix.ncols:
            raise InvalidValueError(
                f"dynamic graph must be square, got {matrix.shape}"
            )
        self._matrix = matrix
        self.policy = policy if policy is not None else CompactionPolicy()
        self._overlay = DeltaOverlay()
        self._views: List[Any] = []
        #: Monotonic mutation sequence number; bumped once per applied batch
        #: (compaction does NOT bump it — the logical graph is unchanged).
        self.seq = 0
        self.stats = StreamStats()

    # ------------------------------------------------------------------
    # Introspection (reads merge base + pending delta)
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._matrix.nrows

    @property
    def nrows(self) -> int:
        return self._matrix.nrows

    @property
    def ncols(self) -> int:
        return self._matrix.ncols

    @property
    def pending_ops(self) -> int:
        """Number of normalized pending delta ops (0 when compacted)."""
        return len(self._overlay)

    @property
    def base_nvals(self) -> int:
        return self._matrix.container.nvals

    def nvals(self) -> int:
        """Edge count of the *logical* graph (base ⊕ delta)."""
        if len(self._overlay) == 0:
            return self.base_nvals
        rows, _cols = self.edges()
        return int(rows.size)

    def has_edge(self, i: int, j: int) -> bool:
        pend = self._overlay.get(i, j)
        if pend is not None:
            return pend[0]
        return self._matrix.container.get(i, j) is not None

    def edge_value(self, i: int, j: int) -> Optional[float]:
        """Logical stored value at ``(i, j)``, or None if absent."""
        pend = self._overlay.get(i, j)
        if pend is not None:
            return float(pend[1]) if pend[0] else None
        v = self._matrix.container.get(i, j)
        return None if v is None else float(v)

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, cols)`` of the logical graph, without compacting.

        The mutation fuzzer samples delete targets from this; it is a host
        merge, so it neither charges device work nor bumps the version.
        """
        base = self._matrix.container
        if len(self._overlay) == 0:
            rows = np.repeat(
                np.arange(base.nrows, dtype=np.int64), np.diff(base.indptr)
            )
            return rows, base.indices.copy()
        indptr, indices, _vals = merge_overlay(base, self._overlay)
        rows = np.repeat(np.arange(base.nrows, dtype=np.int64), np.diff(indptr))
        return rows, indices

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def attach(self, view: Any) -> Any:
        """Register an incremental view; returns it for chaining."""
        if view not in self._views:
            self._views.append(view)
        return view

    def detach(self, view: Any) -> None:
        if view in self._views:
            self._views.remove(view)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def apply(self, batch: EdgeBatch) -> "DynamicGraph":
        """Apply one edge batch atomically.

        Views are notified with the normalized batch *before* the overlay
        absorbs it, so they can probe pre-batch state through
        :meth:`has_edge` / :meth:`edge_value`.
        """
        batch.validate(self.nrows, self.ncols)
        nb = batch.normalized()
        if len(nb) == 0:
            return self
        for view in self._views:
            view.on_batch(self, nb)
        self._overlay.absorb(nb)
        self.seq += 1
        self.stats.batches += 1
        self.stats.inserts += nb.insert_count
        self.stats.deletes += nb.delete_count
        if self.policy.should_compact(len(self._overlay), self.base_nvals):
            self.stats.auto_compactions += 1
            self.compact()
        return self

    def insert_edges(self, rows: Any, cols: Any, vals: Any) -> "DynamicGraph":
        return self.apply(EdgeBatch.inserts(rows, cols, vals))

    def delete_edges(self, rows: Any, cols: Any) -> "DynamicGraph":
        return self.apply(EdgeBatch.deletes(rows, cols))

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> bool:
        """Fold the pending delta into the base CSR; True if work was done.

        The merge is charged through the active backend's cost model (see
        module docstring); the container keeps its identity and gets a new
        version, which is what invalidates every downstream cache.
        """
        if len(self._overlay) == 0:
            return False
        m = self._matrix
        m._settle()  # recorded lazy ops may still read the old arrays
        base = m.container
        be = current_backend()
        name = getattr(be, "name", "")
        if name == "cuda_sim":
            self._compact_device(be, base)
        elif name == "multi_sim":
            self._compact_sharded(be, base)
        else:
            # Host backends: the merge is ordinary NumPy, no device charge.
            base.install_arrays(*merge_overlay(base, self._overlay))
        m._invalidate()
        self._overlay.clear()
        self.stats.compactions += 1
        return True

    def _compact_device(self, be: Any, base: Any) -> None:
        """cuda_sim: upload the delta, merge on-device, mark the result."""
        dev = be._dev()
        be._ensure_resident(base)
        charge_transfer(self._overlay.nbytes, "h2d", device=dev)
        arrays = launch(
            COMPACT_MERGE,
            LaunchConfig.cover(base.nvals + len(self._overlay)),
            base,
            self._overlay,
            device=dev,
        )
        base.install_arrays(*arrays)
        # The merged arrays were produced on-device: mark the new version
        # clean so the next kernel elides the re-upload.
        be.note_result(base)

    def _compact_sharded(self, be: Any, base: Any) -> None:
        """multi_sim: shard-local delta merges + all-to-all row exchange."""
        if be.nparts == 1:
            self._compact_device(be._ex(0), base)
            return
        be._ensure_available(base)
        arrays = merge_overlay(base, self._overlay)
        nparts = be.nparts
        per_items = max((base.nvals + len(self._overlay)) / nparts, 1.0)
        per_delta = max(self._overlay.nbytes // nparts, 1)
        item_bytes = base.type.nbytes + 8  # value + column index per item
        for p in range(nparts):
            charge_transfer(per_delta, "h2d", device=be._dev(p))
            launch(
                COMPACT_SHARD,
                LaunchConfig.cover(int(per_items)),
                per_items,
                item_bytes,
                device=be._dev(p),
                san_reads=(base,),
            )
        # Inserts can move a row's slice across the ownership split; charge
        # the redistribution like the sharded transpose does.
        dt = be.cluster.comm.all_to_all(float(self._overlay.nbytes))
        be.cluster.charge_comm("all_to_all", dt, float(self._overlay.nbytes))
        base.install_arrays(*arrays)
        be.note_result(base)

    # ------------------------------------------------------------------
    # Materialised access
    # ------------------------------------------------------------------

    @property
    def matrix(self) -> Matrix:
        """The materialised graph (compacts pending delta on demand)."""
        self.compact()
        return self._matrix

    def snapshot(self) -> Matrix:
        """An independent materialised copy (full-recompute oracle input).

        Host-side merge into a fresh container — no device charge, no
        version bump, no compaction of the live graph.
        """
        base = self._matrix.container
        from ..containers.csr import CSRMatrix

        indptr, indices, values = merge_overlay(base, self._overlay)
        return Matrix(
            CSRMatrix(base.nrows, base.ncols, indptr, indices, values, base.type)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(n={self.n}, base_nvals={self.base_nvals}, "
            f"pending={self.pending_ops}, seq={self.seq})"
        )
