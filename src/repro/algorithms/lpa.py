"""Community detection by synchronous label propagation (LPA).

Every vertex starts in its own community; each round it adopts the most
frequent label among its neighbours (ties broken toward the smallest label,
making the algorithm deterministic and backend-portable).  Converges when no
label changes or after ``max_iter`` rounds — the classic Raghavan et al.
algorithm, expressed with one mxm-like pass per round.

The per-round "mode over neighbour labels" is computed with GraphBLAS
building blocks: a one-hot community-membership matrix F (vertex × label),
neighbour label counts ``C = A ⊗ F`` over (PLUS, SECOND-as-1), and an
argmax per row via reduce + ewise compare.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core import operations as ops
from ..core.matrix import Matrix
from ..core.monoid import MAX_MONOID, MIN_MONOID, PLUS_MONOID
from ..core.operators import EQ, FIRST, ONE, PLUS, SECOND, TIMES
from ..core.semiring import PLUS_PAIR, PLUS_SECOND, PLUS_TIMES, MIN_SECOND
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import FP64, INT64

__all__ = ["label_propagation", "modularity"]


def _one_hot(labels: np.ndarray, n: int) -> Matrix:
    """Vertex × label membership matrix with a single 1 per row."""
    return Matrix.from_lists(
        np.arange(n, dtype=np.int64),
        labels.astype(np.int64),
        np.ones(n, dtype=np.int64),
        n,
        n,
        INT64,
    )


def label_propagation(g: Matrix, max_iter: int = 100) -> Vector:
    """Community labels (dense INT64) for the undirected graph ``g``.

    Deterministic: ties go to the smallest label.  Isolated vertices keep
    their own label.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return Vector.sparse(INT64, 0)
    for _ in range(max_iter):
        f = _one_hot(labels, n)
        # counts[v, l] = number of v's neighbours with label l.
        counts = Matrix.sparse(INT64, n, n)
        ops.mxm(counts, g, f, PLUS_PAIR)
        if counts.nvals == 0:
            break
        # Row-wise max count.
        best = Vector.sparse(INT64, n)
        ops.reduce_to_vector(best, counts, MAX_MONOID)
        # Mark entries achieving the max, then take the smallest such label.
        cc = counts.container
        row_ids = np.repeat(np.arange(n, dtype=np.int64), cc.row_degrees())
        best_dense = best.to_dense(0)
        winners = cc.values == best_dense[row_ids]
        new_labels = labels.copy()
        win_rows = row_ids[winners]
        win_labels = cc.indices[winners]
        # First winner per row is the smallest label (CSR order is sorted).
        first_of_row = np.flatnonzero(
            np.concatenate(([True], win_rows[1:] != win_rows[:-1]))
        )
        new_labels[win_rows[first_of_row]] = win_labels[first_of_row]
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    # Canonicalise: rename each community to its smallest member id.
    canon = {}
    out = np.empty(n, dtype=np.int64)
    order = np.argsort(labels, kind="stable")  # gbsan: ok(argsort) -- label canonicalisation, once per sweep, not a kernel hot path
    for v in range(n):
        lbl = labels[v]
        if lbl not in canon:
            canon[lbl] = min(
                int(x) for x in np.flatnonzero(labels == lbl)
            )
    for v in range(n):
        out[v] = canon[labels[v]]
    return Vector.from_lists(np.arange(n, dtype=np.int64), out, n, INT64)


def modularity(g: Matrix, labels: Vector) -> float:
    """Newman modularity Q of a labelling on an undirected graph.

    ``Q = Σ_c [ e_c/m - (d_c / 2m)² ]`` with e_c intra-community edges
    (each direction counted once), d_c total degree of community c, and m
    undirected edge count.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    two_m = g.nvals  # symmetric storage counts each edge twice
    if two_m == 0:
        return 0.0
    lab = labels.to_dense(-1).astype(np.int64)
    cc = g.container
    rows = np.repeat(np.arange(n, dtype=np.int64), cc.row_degrees())
    intra = float(np.count_nonzero(lab[rows] == lab[cc.indices]))  # directed count
    deg = cc.row_degrees().astype(np.float64)
    q = intra / two_m
    for c in np.unique(lab[lab >= 0]):
        d_c = float(deg[lab == c].sum())
        q -= (d_c / two_m) ** 2
    return q
