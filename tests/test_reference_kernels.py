"""Unit tests for the reference backend's dict kernels (the oracle itself)."""

import numpy as np
import pytest

from repro.backends.reference.kernels import (
    dict_to_mat,
    dict_to_vec,
    ewise_intersect_dict,
    ewise_union_dict,
    mat_to_dict,
    spgemm_dict,
    spmv_dict,
    vec_to_dict,
)
from repro.containers.csr import CSRMatrix
from repro.containers.sparsevec import SparseVector
from repro.core.operators import MIN, PLUS, SECOND
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.types import FP64


class TestConversions:
    def test_vec_roundtrip(self):
        v = SparseVector.from_lists(6, [4, 1], [40.0, 10.0])
        d = vec_to_dict(v)
        assert d == {1: 10.0, 4: 40.0}
        back = dict_to_vec(d, 6, FP64)
        np.testing.assert_array_equal(back.indices, v.indices)
        np.testing.assert_array_equal(back.values, v.values)

    def test_mat_roundtrip(self):
        m = CSRMatrix.from_dense(np.array([[0, 1.0], [2.0, 0]]))
        d = mat_to_dict(m)
        assert d == {0: {1: 1.0}, 1: {0: 2.0}}
        back = dict_to_mat(d, 2, 2, FP64)
        np.testing.assert_array_equal(back.to_dense(), m.to_dense())

    def test_empty(self):
        assert vec_to_dict(SparseVector.empty(3, FP64)) == {}
        assert dict_to_vec({}, 3, FP64).nvals == 0
        assert mat_to_dict(CSRMatrix.empty(2, 2, FP64)) == {}


class TestSpmvDict:
    def test_plus_times(self):
        a = {0: {0: 2.0, 1: 3.0}, 1: {1: 4.0}}
        u = {0: 1.0, 1: 10.0}
        out = spmv_dict(a, u, PLUS_TIMES, FP64)
        assert out == {0: 32.0, 1: 40.0}

    def test_min_plus(self):
        a = {0: {0: 2.0, 1: 3.0}}
        u = {0: 5.0, 1: 1.0}
        out = spmv_dict(a, u, MIN_PLUS, FP64)
        assert out == {0: 4.0}

    def test_no_intersection_no_entry(self):
        a = {0: {0: 2.0}}
        u = {1: 1.0}
        assert spmv_dict(a, u, PLUS_TIMES, FP64) == {}

    def test_iterates_smaller_side(self):
        # Both orders give the same result (the code branches on size).
        a = {0: {j: 1.0 for j in range(10)}}
        small_u = {3: 2.0}
        big_u = {j: 2.0 for j in range(10)}
        assert spmv_dict(a, small_u, PLUS_TIMES, FP64) == {0: 2.0}
        assert spmv_dict(a, big_u, PLUS_TIMES, FP64) == {0: 20.0}


class TestSpgemmDict:
    def test_gustavson(self):
        a = {0: {0: 1.0, 1: 2.0}}
        b = {0: {0: 3.0}, 1: {0: 4.0, 1: 5.0}}
        out = spgemm_dict(a, b, PLUS_TIMES, FP64)
        assert out == {0: {0: 11.0, 1: 10.0}}

    def test_missing_b_row_skipped(self):
        a = {0: {5: 1.0}}
        b = {0: {0: 1.0}}
        assert spgemm_dict(a, b, PLUS_TIMES, FP64) == {}


class TestEwiseDict:
    def test_union(self):
        out = ewise_union_dict({0: 1.0}, {0: 2.0, 1: 5.0}, PLUS, FP64)
        assert out == {0: 3.0, 1: 5.0}

    def test_intersect(self):
        out = ewise_intersect_dict({0: 1.0, 1: 2.0}, {1: 10.0, 2: 3.0}, MIN, FP64)
        assert out == {1: 2.0}

    def test_intersect_operand_order_preserved(self):
        # SECOND must take the right operand even when sides are swapped
        # internally for the smaller-side iteration.
        big = {i: float(i) for i in range(10)}
        small = {3: 99.0}
        assert ewise_intersect_dict(small, big, SECOND, FP64) == {3: 3.0}
        assert ewise_intersect_dict(big, small, SECOND, FP64) == {3: 99.0}

    def test_empty_sides(self):
        assert ewise_union_dict({}, {1: 2.0}, PLUS, FP64) == {1: 2.0}
        assert ewise_intersect_dict({}, {1: 2.0}, PLUS, FP64) == {}
