"""Multi-tenant graph-query serving over shared resident graphs.

The serving layer turns the library's batched primitives into an online
system: typed per-user queries (BFS distance maps, k-hop neighborhoods,
personalized PageRank, feature lookups) arrive from many tenants, a
coalescer drains compatible queries into multi-source batched launches
(one masked ``mxm`` per BFS level for a whole frontier *matrix*, one SpMM
per PPR iteration for a whole block of rank vectors), and a scheduler
overlaps batches on virtual stream lanes — on ``multi_sim`` each batch
additionally shards block-row across the device cluster.

Module map:

- :mod:`.queries` — query/result types, coalesce keys, ``Overloaded``;
- :mod:`.engine` — resident graph registry + batched execution paths;
- :mod:`.coalescer` — pools, size/age close triggers, weighted fairness;
- :mod:`.scheduler` — stream-lane placement and queueing replay;
- :mod:`.service` — the discrete-event service core and its stats;
- :mod:`.traffic` — seeded Zipf/Poisson synthetic workload generator;
- :mod:`.aio` — ``asyncio`` facade (awaitable submissions).

See ``docs/serving.md`` for the design narrative and the fig9 benchmark
(`benchmarks/bench_fig9_serving_qps.py`) for the batched-vs-unbatched QPS
experiment this layer exists to win.
"""

from .coalescer import BatchPolicy, Coalescer, PendingQuery
from .engine import ExecutionEngine, GraphHandle
from .queries import (
    BfsQuery,
    FeatureQuery,
    KHopQuery,
    Overloaded,
    PprQuery,
    Query,
    QueryResult,
)
from .scheduler import BatchScheduler, StreamLane, simulate_queueing
from .service import GraphService, QueryRecord, ServiceStats, Tenant
from .traffic import Submission, TrafficSpec, generate_trace, zipf_choice

__all__ = [
    "BatchPolicy",
    "Coalescer",
    "PendingQuery",
    "ExecutionEngine",
    "GraphHandle",
    "Query",
    "BfsQuery",
    "KHopQuery",
    "PprQuery",
    "FeatureQuery",
    "QueryResult",
    "Overloaded",
    "BatchScheduler",
    "StreamLane",
    "simulate_queueing",
    "GraphService",
    "QueryRecord",
    "ServiceStats",
    "Tenant",
    "Submission",
    "TrafficSpec",
    "generate_trace",
    "zipf_choice",
]
