"""Structural constructors: diag, concat, split (GrB/GxB structural ops).

- :func:`diag` — a matrix with a vector on its k-th diagonal
  (``GrB_Matrix_diag``);
- :func:`diag_extract` — the k-th diagonal of a matrix as a vector
  (``GxB_Vector_diag``);
- :func:`concat` — tile a 2-D grid of matrices into one
  (``GxB_Matrix_concat``);
- :func:`split` — the inverse: carve a matrix into tiles
  (``GxB_Matrix_split``).

All are pure container transforms (no semiring), implemented vectorized at
the frontend.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..containers.convert import build_matrix
from ..containers.csr import CSRMatrix
from ..exceptions import DimensionMismatchError, InvalidValueError
from ..types import GrBType
from .matrix import Matrix
from .vector import Vector

__all__ = ["diag", "diag_extract", "concat", "split"]


def diag(v: Vector, k: int = 0) -> Matrix:
    """Square matrix with ``v`` on diagonal ``k`` (positive = above main).

    The result has dimension ``v.size + |k|`` so the whole vector fits.
    """
    n = v.size + abs(k)
    c = v.container
    if k >= 0:
        rows = c.indices
        cols = c.indices + k
    else:
        rows = c.indices - k
        cols = c.indices
    return Matrix(build_matrix(n, n, rows, cols, c.values.copy(), c.type))


def diag_extract(a: Matrix, k: int = 0) -> Vector:
    """The k-th diagonal of ``a`` as a vector.

    Element i of the result is ``A[i, i+k]`` (k ≥ 0) or ``A[i-k, i]``
    (k < 0); the length matches the diagonal's extent.
    """
    c = a.container
    if k >= 0:
        length = min(c.nrows, c.ncols - k)
    else:
        length = min(c.nrows + k, c.ncols)
    if length < 0:
        raise InvalidValueError(f"diagonal {k} outside a {c.nrows}x{c.ncols} matrix")
    rows = np.repeat(np.arange(c.nrows, dtype=np.int64), c.row_degrees())
    on_diag = c.indices - rows == k
    rr = rows[on_diag]
    vals = c.values[on_diag]
    idx = rr if k >= 0 else rr + k
    from ..containers.sparsevec import SparseVector

    return Vector(SparseVector(length, idx, vals.copy(), c.type))


def concat(tiles: Sequence[Sequence[Matrix]]) -> Matrix:
    """Assemble a 2-D grid of tiles into one matrix.

    All tiles in a grid row must share nrows; all tiles in a grid column
    must share ncols (checked).  Domains promote to a common type.
    """
    if not tiles or not tiles[0]:
        raise InvalidValueError("concat requires a nonempty tile grid")
    width = len(tiles[0])
    if any(len(row) != width for row in tiles):
        raise InvalidValueError("ragged tile grid")
    row_heights = [row[0].nrows for row in tiles]
    col_widths = [t.ncols for t in tiles[0]]
    for i, row in enumerate(tiles):
        for j, t in enumerate(row):
            if t.nrows != row_heights[i]:
                raise DimensionMismatchError(
                    f"tile ({i},{j}) height", expected=row_heights[i], actual=t.nrows
                )
            if t.ncols != col_widths[j]:
                raise DimensionMismatchError(
                    f"tile ({i},{j}) width", expected=col_widths[j], actual=t.ncols
                )
    row_off = np.concatenate(([0], np.cumsum(row_heights)))
    col_off = np.concatenate(([0], np.cumsum(col_widths)))
    from ..types import promote

    out_t: GrBType = tiles[0][0].type
    for row in tiles:
        for t in row:
            out_t = promote(out_t, t.type)
    rows_parts, cols_parts, vals_parts = [], [], []
    for i, row in enumerate(tiles):
        for j, t in enumerate(row):
            c = t.container
            if not c.nvals:
                continue
            r = np.repeat(np.arange(c.nrows, dtype=np.int64), c.row_degrees())
            rows_parts.append(r + row_off[i])
            cols_parts.append(c.indices + col_off[j])
            vals_parts.append(c.values.astype(out_t.dtype, copy=False))
    nrows, ncols = int(row_off[-1]), int(col_off[-1])
    if not rows_parts:
        return Matrix(CSRMatrix.empty(nrows, ncols, out_t))
    return Matrix(
        build_matrix(
            nrows,
            ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
            out_t,
        )
    )


def split(a: Matrix, row_sizes: Sequence[int], col_sizes: Sequence[int]) -> List[List[Matrix]]:
    """Carve ``a`` into a grid of tiles (inverse of :func:`concat`).

    ``sum(row_sizes)`` must equal nrows and ``sum(col_sizes)`` ncols.
    """
    if sum(row_sizes) != a.nrows:
        raise DimensionMismatchError("row sizes", expected=a.nrows, actual=sum(row_sizes))
    if sum(col_sizes) != a.ncols:
        raise DimensionMismatchError("col sizes", expected=a.ncols, actual=sum(col_sizes))
    if any(s < 0 for s in row_sizes) or any(s < 0 for s in col_sizes):
        raise InvalidValueError("negative tile size")
    row_off = np.concatenate(([0], np.cumsum(row_sizes))).astype(np.int64)
    col_off = np.concatenate(([0], np.cumsum(col_sizes))).astype(np.int64)
    c = a.container
    rows = np.repeat(np.arange(c.nrows, dtype=np.int64), c.row_degrees())
    r_tile = np.searchsorted(row_off, rows, side="right") - 1
    c_tile = np.searchsorted(col_off, c.indices, side="right") - 1
    out: List[List[Matrix]] = []
    for i in range(len(row_sizes)):
        out_row: List[Matrix] = []
        for j in range(len(col_sizes)):
            pick = (r_tile == i) & (c_tile == j)
            out_row.append(
                Matrix(
                    build_matrix(
                        int(row_sizes[i]),
                        int(col_sizes[j]),
                        rows[pick] - row_off[i],
                        c.indices[pick] - col_off[j],
                        c.values[pick].copy(),
                        c.type,
                    )
                )
            )
        out.append(out_row)
    return out
