"""gbsan under graph mutation: the residency shadow vs streaming updates.

The hazard class streaming introduces: an edge batch (or compaction)
rewrites the host CSR in place and bumps its container version, but a
kernel keeps consuming the *device-resident* copy cached before the
mutation.  The planted bug below skips the H2D refresh between
``install_arrays`` and the next device-side transpose build — exactly the
"kernel consumes cached transpose after an edge batch" gap — and the
sanitizer's residency shadow must flag it as a stale read.  The fixed
path (:meth:`repro.streaming.DynamicGraph.compact`, which launches the
merge on-device and marks the result clean via ``note_result``) must stay
finding-free under the same workload.
"""

import numpy as np
import pytest

import repro.sanitizer as gbsan
from repro.algorithms.bfs import bfs_levels
from repro.backends.dispatch import get_backend
from repro.core.matrix import Matrix
from repro.streaming import DeltaOverlay, DynamicGraph, EdgeBatch, merge_overlay
from repro.testing.executor import backend_session
from repro.types import FP64

pytestmark = pytest.mark.no_multi_sim


def _ring(n: int) -> Matrix:
    rows = np.arange(n, dtype=np.int64)
    cols = (rows + 1) % n
    return Matrix.from_lists(rows, cols, np.ones(n), n, n, FP64)


def _batch() -> EdgeBatch:
    return EdgeBatch.inserts([0, 3, 5], [4, 7, 2], [1.0, 1.0, 1.0])


def test_planted_stale_transpose_read_is_caught():
    """Mutating the host CSR without refreshing the device copy is flagged."""
    with gbsan.sanitized() as san:
        with backend_session("cuda_sim") as be:
            m = _ring(12)
            base = m.container
            bfs_levels(m, 0)  # warm: adjacency now device-resident
            san.drain()  # only findings from the planted window count

            # Buggy streaming path: fold the batch into the host arrays
            # directly (version bumps, aux caches clear) but never refresh
            # or rebuild the device copy.
            overlay = DeltaOverlay()
            overlay.absorb(_batch())
            base.install_arrays(*merge_overlay(base, overlay))

            # The pull kernel's transpose build now consumes the stale
            # device-resident adjacency.
            be._device_transpose(base)

        findings = san.drain()
    kinds = {f.kind for f in findings}
    assert "stale-read" in kinds, (
        f"planted stale transpose read not caught; findings: {findings}"
    )


def test_fixed_compaction_path_is_clean():
    """DynamicGraph.compact's launch/install/note_result ordering is clean."""
    with gbsan.sanitized() as san:
        with backend_session("cuda_sim") as be:
            m = _ring(12)
            g = DynamicGraph(m)
            bfs_levels(g.matrix, 0)
            san.drain()

            g.apply(_batch())
            g.compact()  # device-side merge + note_result
            be._device_transpose(m.container)  # rebuilt against fresh copy
            bfs_levels(g.matrix, 0)

        findings = san.drain()
    assert findings == [], f"fixed compaction path not clean: {findings}"


def test_fixed_path_clean_under_repeated_batches():
    """Interleaved batches/queries/compactions stay finding-free."""
    with gbsan.sanitized() as san:
        with backend_session("cuda_sim"):
            g = DynamicGraph(_ring(16))
            san.drain()
            rng = np.random.default_rng(7)
            for step in range(4):
                n = g.n
                rows = rng.integers(0, n, size=5)
                cols = rng.integers(0, n, size=5)
                g.apply(EdgeBatch.inserts(rows, cols, np.ones(5)))
                bfs_levels(g.matrix, int(step % n))
                if step % 2:
                    g.compact()
        findings = san.drain()
    assert findings == [], f"streaming workload raised findings: {findings}"
