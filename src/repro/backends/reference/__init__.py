"""Pure-Python reference backend (semantics oracle)."""

from .backend import ReferenceBackend

__all__ = ["ReferenceBackend"]
