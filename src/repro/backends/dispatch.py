"""Backend registry and selection.

The active backend is process-global with a context-manager override, so an
algorithm written once runs on any backend::

    with use_backend("cuda_sim"):
        levels = bfs_levels(graph, source)

Backends register themselves on import via :func:`register_backend`; the
built-ins are imported lazily the first time they are requested so that
importing :mod:`repro` stays cheap.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Union

from .base import Backend

__all__ = [
    "register_backend",
    "get_backend",
    "set_default_backend",
    "current_backend",
    "use_backend",
    "available_backends",
    "set_sync_hook",
]

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}
_LOCK = threading.Lock()
_STATE = threading.local()
_DEFAULT_NAME = "cpu"
_SYNC_HOOK: Optional[Callable[[], None]] = None


def set_sync_hook(hook: Optional[Callable[[], None]]) -> None:
    """Install a barrier run when a ``use_backend`` scope exits.

    The lazy evaluation layer (:mod:`repro.lazy`) registers its ``wait``
    here so that work recorded against a backend is forced *while that
    backend is still current* — pending operations never leak across a
    backend switch.
    """
    global _SYNC_HOOK
    _SYNC_HOOK = hook


def sync_pending() -> None:
    """Force any lazily recorded work now (no-op without a hook).

    Backends call this before state mutations whose effect depends on
    which operations have already executed — e.g. evicting device
    buffers — so deferred work observes the pre-mutation state.
    """
    hook = _SYNC_HOOK
    if hook is not None:
        hook()


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (overwrites allowed)."""
    with _LOCK:
        _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def _builtin(name: str) -> None:
    """Import-on-demand registration of the built-in backends."""
    if name in _FACTORIES:
        return
    if name == "reference":
        from .reference.backend import ReferenceBackend

        register_backend("reference", ReferenceBackend)
    elif name == "cpu":
        from .cpu.backend import CpuBackend

        register_backend("cpu", CpuBackend)
    elif name == "cuda_sim":
        from .cuda_sim.backend import CudaSimBackend

        register_backend("cuda_sim", CudaSimBackend)
    elif name == "multi_sim":
        from .multi_sim.backend import MultiSimBackend

        register_backend("multi_sim", MultiSimBackend)


def get_backend(name: str) -> Backend:
    """Return the (singleton) backend instance for ``name``."""
    _builtin(name)
    with _LOCK:
        inst = _INSTANCES.get(name)
        if inst is None:
            try:
                factory = _FACTORIES[name]
            except KeyError:
                raise KeyError(
                    f"unknown backend {name!r}; known: {sorted(set(_FACTORIES) | {'reference', 'cpu', 'cuda_sim', 'multi_sim'})}"
                ) from None
            inst = factory()
            _INSTANCES[name] = inst
        return inst


def available_backends() -> list:
    """Names of all registerable backends (built-ins + user-registered)."""
    return sorted(set(_FACTORIES) | {"reference", "cpu", "cuda_sim", "multi_sim"})


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (validates eagerly)."""
    global _DEFAULT_NAME
    get_backend(name)
    _DEFAULT_NAME = name


def current_backend() -> Backend:
    """The backend in effect for the calling thread."""
    stack = getattr(_STATE, "stack", None)
    if stack:
        return stack[-1]
    return get_backend(_DEFAULT_NAME)


@contextmanager
def use_backend(backend: Union[str, Backend]) -> Iterator[Backend]:
    """Temporarily switch the calling thread to another backend."""
    inst = get_backend(backend) if isinstance(backend, str) else backend
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    stack.append(inst)
    try:
        yield inst
    finally:
        hook = _SYNC_HOOK
        if hook is not None:
            # Force lazily recorded work before the backend goes away.
            hook()
        stack.pop()
