"""Lazy op-graph optimizer: bit-identity, counter conservation, passes.

Two property families pin the optimizer's contract (see docs/optimizer.md):

- **bit-identity** — for any pipeline of recorded vector ops, the lazy
  path must produce bit-for-bit the values the eager path produces, across
  semirings × masks × accumulators.  The optimizer is pure scheduling.
- **counter conservation** — optimization may only *remove* work:
  ``launches(lazy) <= launches(eager)`` and ``h2d(lazy) <= h2d(eager)``.

Plus unit tests for each pass: ewise→reduce and fill→ewise fusion,
dead-materialization elimination, mask sinking, loop-level direction
selection, automatic whole-loop capture, and the forcing points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.core import operations as ops
from repro.core.assign import assign_scalar
from repro.core.descriptor import DEFAULT, Descriptor
from repro.core.fused import ewise_apply
from repro.core.monoid import MAX_MONOID, MIN_MONOID, PLUS_MONOID
from repro.core.operators import ABS, MAX, MIN, MINUS, PLUS, TIMES
from repro.core.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES
from repro.gpu.device import get_device, reset_device
from repro.lazy import (
    lazy_disabled,
    lazy_enabled,
    lazy_mode,
    passes_configured,
    tape_len,
    wait,
)

SEMIRINGS = [PLUS_TIMES, MIN_PLUS, LOR_LAND]
ACCUMS = [None, PLUS, MIN, MAX]
MONOIDS = [PLUS_MONOID, MIN_MONOID, MAX_MONOID]
DESCS = [
    DEFAULT,
    Descriptor(complement_mask=True),
    Descriptor(structural_mask=True),
    Descriptor(complement_mask=True, structural_mask=True, replace=True),
]


def _fresh():
    gb.get_backend("cuda_sim").evict_all()
    reset_device()


def _graph(n: int, seed: int):
    rng = np.random.default_rng(seed)
    a = rng.uniform(1.0, 9.0, (n, n))
    a[rng.random((n, n)) < 0.6] = 0.0
    u = rng.uniform(1.0, 9.0, n)
    u[rng.random(n) < 0.4] = 0.0
    midx = np.flatnonzero(rng.random(n) < 0.5)
    mask = gb.Vector.from_lists(midx, np.ones(midx.size, dtype=bool), n, gb.BOOL)
    return gb.Matrix.from_dense(a), gb.Vector.from_dense(u), mask


def _pipeline(g, u, mask, semiring, accum, monoid, desc):
    """A representative recorded chain; returns every observable output."""
    n = g.nrows
    w = gb.Vector.sparse(gb.FP64, n)
    ops.mxv(w, g, u, semiring, mask=mask, accum=accum, desc=desc)
    t = gb.Vector.sparse(gb.FP64, n)
    ops.ewise_mult(t, w, u, TIMES)
    s = gb.Vector.sparse(gb.FP64, n)
    assign_scalar(s, 0.5)
    ops.ewise_add(s, s, t, PLUS)
    d = gb.Vector.sparse(gb.FP64, n)
    ewise_apply(d, s, w, MINUS, ABS)
    total = ops.reduce(d, monoid)
    return w, t, s, d, total


def _snapshot(vectors):
    return [(v.to_lists(), str(v.values_array().dtype)) for v in vectors]


@st.composite
def pipeline_case(draw):
    return (
        draw(st.integers(0, 2**31 - 1)),
        draw(st.sampled_from(SEMIRINGS)),
        draw(st.sampled_from(ACCUMS)),
        draw(st.sampled_from(MONOIDS)),
        draw(st.sampled_from(DESCS)),
        draw(st.booleans()),  # masked?
    )


class TestBitIdentity:
    @given(pipeline_case())
    @settings(max_examples=40, deadline=None)
    def test_lazy_equals_eager_bitwise(self, case):
        seed, semiring, accum, monoid, desc, masked = case
        g, u, mask = _graph(12, seed)
        m = mask if masked else None
        _fresh()
        with gb.use_backend("cuda_sim"):
            with lazy_disabled():
                eager = _pipeline(g, u, m, semiring, accum, monoid, desc)
            with lazy_enabled():
                lazy = _pipeline(g, u, m, semiring, accum, monoid, desc)
        assert _snapshot(eager[:4]) == _snapshot(lazy[:4])
        # Scalar reduction: bit-identical, not merely close.
        assert np.asarray(eager[4]).tobytes() == np.asarray(lazy[4]).tobytes()

    @given(pipeline_case())
    @settings(max_examples=15, deadline=None)
    def test_every_pass_ablation_is_bit_identical(self, case):
        seed, semiring, accum, monoid, desc, masked = case
        g, u, mask = _graph(10, seed)
        m = mask if masked else None
        _fresh()
        with gb.use_backend("cuda_sim"):
            with lazy_disabled():
                expect = _snapshot(_pipeline(g, u, m, semiring, accum, monoid, desc)[:4])
            for name in ("fuse", "dme", "sink", "direction", "capture"):
                with lazy_enabled(), passes_configured(**{name: False}):
                    got = _snapshot(_pipeline(g, u, m, semiring, accum, monoid, desc)[:4])
                assert got == expect, f"pass {name}=off diverged"

    def test_bfs_pagerank_lazy_equals_eager(self):
        g = gb.generators.rmat(scale=7, edge_factor=6, seed=11, weighted=False)
        _fresh()
        with gb.use_backend("cuda_sim"):
            with lazy_disabled():
                lv_e = gb.algorithms.bfs_levels(g, 0)
                pr_e = gb.algorithms.pagerank(g, max_iter=12)
            lv_l = gb.algorithms.bfs_levels(g, 0)
            pr_l = gb.algorithms.pagerank(g, max_iter=12)
        assert lv_e.to_lists() == lv_l.to_lists()
        assert pr_e.to_lists()[0] == pr_l.to_lists()[0]
        assert np.array_equal(pr_e.values_array(), pr_l.values_array())


class TestCounterConservation:
    def _run_counted(self, fn, lazy: bool):
        _fresh()
        with gb.use_backend("cuda_sim"):
            ctx = lazy_enabled() if lazy else lazy_disabled()
            with ctx:
                keep = fn()
            wait()
            dev = get_device()
            launches = dev.profiler.launch_count
            h2d = dev.profiler.h2d_bytes
        del keep
        return launches, h2d

    @given(pipeline_case())
    @settings(max_examples=25, deadline=None)
    def test_launches_and_bytes_never_increase(self, case):
        seed, semiring, accum, monoid, desc, masked = case
        g, u, mask = _graph(12, seed)
        m = mask if masked else None

        def fn():
            return _pipeline(g, u, m, semiring, accum, monoid, desc)

        launches_eager, h2d_eager = self._run_counted(fn, lazy=False)
        launches_lazy, h2d_lazy = self._run_counted(fn, lazy=True)
        assert launches_lazy <= launches_eager
        assert h2d_lazy <= h2d_eager

    def test_algorithm_counters_never_increase(self):
        g = gb.generators.rmat(scale=8, edge_factor=8, seed=7, weighted=False)
        for fn in (
            lambda: gb.algorithms.bfs_levels(g, 0),
            lambda: gb.algorithms.pagerank(g, max_iter=10),
        ):
            launches_eager, h2d_eager = self._run_counted(fn, lazy=False)
            launches_lazy, h2d_lazy = self._run_counted(fn, lazy=True)
            assert launches_lazy <= launches_eager
            assert h2d_lazy <= h2d_eager


def _kernel_names(dev):
    return [r.name for r in dev.profiler.records if r.kind == "kernel"]


class TestFusionPasses:
    def test_ewise_reduce_fuses_into_one_kernel(self):
        g, u, _ = _graph(16, 3)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            d = gb.Vector.sparse(gb.FP64, 16)
            ewise_apply(d, u, u, MINUS, ABS)
            total = ops.reduce(d, PLUS_MONOID)
        del g
        assert total == 0.0
        names = _kernel_names(get_device())
        assert any(n.startswith("ewise_reduce_fused_v") for n in names)

    def test_fill_ewise_fuses_and_skips_fill_materialization(self):
        _, u, _ = _graph(16, 4)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            s = gb.Vector.sparse(gb.FP64, 16)
            assign_scalar(s, 0.25)
            ops.ewise_add(s, s, u, PLUS)
            s.nvals
        names = _kernel_names(get_device())
        assert any(n.startswith("fill_ewise_fused_v") for n in names)
        # The dense fill itself never launched as a separate assign.
        assert not any(n.startswith("scatter_assign") for n in names)

    def test_fusion_respects_other_consumers(self):
        # The fill output is ALSO observed -> fill→ewise fusion must not
        # delete it; both results stay correct.
        _, u, _ = _graph(16, 5)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            s = gb.Vector.sparse(gb.FP64, 16)
            assign_scalar(s, 0.25)
            out = gb.Vector.sparse(gb.FP64, 16)
            ops.ewise_add(out, s, u, PLUS)
            assert s.nvals == 16
            assert all(v == 0.25 for v in s.to_lists()[1])
        with gb.use_backend("cuda_sim"), lazy_disabled():
            s2 = gb.Vector.sparse(gb.FP64, 16)
            assign_scalar(s2, 0.25)
            out2 = gb.Vector.sparse(gb.FP64, 16)
            ops.ewise_add(out2, s2, u, PLUS)
        assert out.to_lists() == out2.to_lists()


class TestDeadMaterializationElimination:
    def test_dead_temporary_never_launches(self):
        g, u, _ = _graph(16, 6)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            w = gb.Vector.sparse(gb.FP64, 16)
            ops.mxv(w, g, u, PLUS_TIMES)
            del w  # never observed: must not launch, transfer, or allocate
            wait()
        dev = get_device()
        assert dev.profiler.launch_count == 0
        assert dev.profiler.h2d_bytes == 0

    def test_overwritten_output_drops_previous_producer(self):
        g, u, _ = _graph(16, 7)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            w = gb.Vector.sparse(gb.FP64, 16)
            ops.mxv(w, g, u, PLUS_TIMES)
            # Unmasked, unaccumulated overwrite: the first product's value
            # is unobservable, so only the second may launch.
            ops.mxv(w, g, u, MIN_PLUS)
            w.nvals
        names = [n.split("[", 1)[0] for n in _kernel_names(get_device())]
        spmv = [n for n in names if "spmv" in n or "spmsv" in n]
        assert len(spmv) == 1

    def test_accumulated_output_keeps_previous_producer(self):
        g, u, _ = _graph(16, 8)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            w = gb.Vector.sparse(gb.FP64, 16)
            ops.mxv(w, g, u, PLUS_TIMES)
            ops.mxv(w, g, u, MIN_PLUS, accum=PLUS)  # reads the first result
            lazy_lists = w.to_lists()
        with gb.use_backend("cuda_sim"), lazy_disabled():
            w2 = gb.Vector.sparse(gb.FP64, 16)
            ops.mxv(w2, g, u, PLUS_TIMES)
            ops.mxv(w2, g, u, MIN_PLUS, accum=PLUS)
        assert lazy_lists == w2.to_lists()


class TestDirectionAndCapture:
    def test_frontier_products_forced_push(self):
        # Sparse boolean frontier over a selection semiring with a
        # complemented structural mask: the loop-level direction pass must
        # pick push (no transpose build appears).
        g = gb.generators.rmat(scale=8, edge_factor=8, seed=13, weighted=False)
        _fresh()
        with gb.use_backend("cuda_sim"):
            gb.algorithms.bfs_levels(g, 0)
        names = {n.split("[", 1)[0] for n in _kernel_names(get_device())}
        assert "transpose_countsort" not in names

    def test_steady_state_loop_aggregates_into_replay(self):
        g = gb.generators.rmat(scale=8, edge_factor=8, seed=13, weighted=False)
        _fresh()
        with gb.use_backend("cuda_sim"):
            with lazy_disabled():
                eager_levels = gb.algorithms.bfs_levels(g, 0)
            reset_device()
            levels = gb.algorithms.bfs_levels(g, 0)
        assert levels.to_lists() == eager_levels.to_lists()
        dev = get_device()
        hops = int(np.max(levels.values_array())) + 1
        records = [r for r in dev.profiler.records if r.kind == "kernel"]
        replays = [r for r in records if r.name.startswith("graph_replay[lazy:")]
        assert replays, "steady-state hops were not aggregated"
        assert len(records) < hops
        # Lossless attribution: expanded members cover every hop.
        agg = dev.profiler.by_kernel(expand_replays=True)
        expanded = sum(
            int(row["count"])
            for name, row in agg.items()
            if not name.startswith("graph_replay[")
        )
        assert expanded == hops

    def test_capture_disabled_runs_plain(self):
        g = gb.generators.rmat(scale=7, edge_factor=6, seed=2, weighted=False)
        _fresh()
        with gb.use_backend("cuda_sim"), passes_configured(capture=False):
            levels = gb.algorithms.bfs_levels(g, 0)
        names = _kernel_names(get_device())
        assert not any(n.startswith("graph_replay[lazy:") for n in names)
        assert levels.nvals > 0


class TestForcingPoints:
    def test_observers_force_and_mutators_settle(self):
        g, u, _ = _graph(16, 9)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            w = gb.Vector.sparse(gb.FP64, 16)
            ops.mxv(w, g, u, PLUS_TIMES)
            assert tape_len() == 1
            w.nvals  # observation point
            assert tape_len() == 0
            ops.mxv(w, g, u, PLUS_TIMES)
            w.set_element(0, 1.0)  # mutation settles first
            assert tape_len() == 0
            assert w.get(0) == 1.0

    def test_scalar_reduce_forces(self):
        g, u, _ = _graph(16, 10)
        _fresh()
        with gb.use_backend("cuda_sim"), lazy_enabled():
            w = gb.Vector.sparse(gb.FP64, 16)
            ops.mxv(w, g, u, PLUS_TIMES)
            ops.reduce(w, PLUS_MONOID)
            assert tape_len() == 0

    def test_backend_exit_forces(self):
        g, u, _ = _graph(16, 11)
        _fresh()
        with lazy_enabled():
            with gb.use_backend("cuda_sim"):
                w = gb.Vector.sparse(gb.FP64, 16)
                ops.mxv(w, g, u, PLUS_TIMES)
                assert tape_len() == 1
            assert tape_len() == 0
            assert get_device().profiler.launch_count > 0
        del w

    def test_mode_restored_by_contexts(self):
        before = lazy_mode()
        with lazy_enabled():
            assert lazy_mode() == "on"
            with lazy_disabled():
                assert lazy_mode() == "off"
            assert lazy_mode() == "on"
        assert lazy_mode() == before
