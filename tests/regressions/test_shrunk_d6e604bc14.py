"""Auto-generated regression repro (repro.testing.shrink).

Shrunk failing program: erdos_renyi_gnm(size=2, seed=1984622371, weighted=False) seed=1325872774: [mxm]
Original divergence: backend 'cpu' diverged at op #0 (mxm): matrix values differ at 2 stored positions

Reproduce / investigate with::

    PYTHONPATH=src python -m repro.testing.fuzz --replay test_shrunk_d6e604bc14.py

This test stays green once the underlying bug is fixed; keep it as a
permanent regression guard.
"""

from repro.testing.executor import run_differential
from repro.testing.programs import Program

PROGRAM = {'version': 1, 'graph': {'generator': 'erdos_renyi_gnm', 'size': 2, 'seed': 1984622371, 'weighted': False}, 'seed': 1325872774, 'ops': [{'op': 'mxm', 'a': 0, 'b': 0, 'semiring': 'MIN_PLUS', 'mask': None, 'accum': None, 'desc': [], 'into': None}]}


def test_shrunk_program_d6e604bc14():
    divergence = run_differential(Program.from_dict(PROGRAM))
    assert divergence is None, str(divergence)
