"""Incremental view tests: answers, caching, and fallback decisions."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_levels
from repro.algorithms.components import connected_components
from repro.algorithms.pagerank import pagerank
from repro.core.matrix import Matrix
from repro.exceptions import IndexOutOfBoundsError, InvalidValueError
from repro.streaming import (
    DynamicGraph,
    EdgeBatch,
    IncrementalBFS,
    IncrementalCC,
    IncrementalPageRank,
    RecomputePolicy,
    random_edge_batch,
)
from repro.testing.equivalence import assert_same, same
from repro.types import FP64


def _chain(n: int) -> Matrix:
    rows = np.arange(n - 1, dtype=np.int64)
    return Matrix.from_lists(rows, rows + 1, np.ones(n - 1), n, n, FP64)


def _random_graph(seed: int, n: int = 24, density: float = 0.12) -> Matrix:
    rng = np.random.default_rng(seed)
    return Matrix.from_dense((rng.random((n, n)) < density).astype(float), FP64)


class TestIncrementalBFS:
    def test_source_bounds_checked(self):
        g = DynamicGraph(_chain(4))
        with pytest.raises(IndexOutOfBoundsError):
            IncrementalBFS(g, 4)

    def test_insert_updates_are_exact(self):
        g = DynamicGraph(_random_graph(1))
        view = IncrementalBFS(g, 0)
        view.query()
        for step in range(6):
            g.apply(random_edge_batch(step, g.n, inserts=4))
            got = view.query()
            assert_same(got, bfs_levels(g.snapshot(), 0), exact=True)
        assert view.stats.full_recomputes == 1
        assert view.stats.incremental_updates == 6

    def test_insert_shortens_level(self):
        g = DynamicGraph(_chain(8))
        view = IncrementalBFS(g, 0)
        lv0 = view.query()
        assert lv0[7] == 7
        g.insert_edges([0], [6], [1.0])
        lv1 = view.query()
        assert lv1[6] == 1 and lv1[7] == 2
        assert view.stats.incremental_updates == 1

    def test_insert_reaches_unreachable(self):
        m = Matrix.from_lists([0], [1], [1.0], 4, 4, FP64)
        g = DynamicGraph(m)
        view = IncrementalBFS(g, 0)
        assert view.query().get(3) is None
        g.insert_edges([1, 2], [2, 3], [1.0, 1.0])
        lv = view.query()
        assert lv[2] == 2 and lv[3] == 3

    def test_irrelevant_delete_stays_incremental(self):
        g = DynamicGraph(_chain(6))
        view = IncrementalBFS(g, 0)
        view.query()
        # (0,3) isn't an edge; deleting it can't change any level.
        g.delete_edges([0], [3])
        view.query()
        assert view.stats.delete_fallbacks == 0
        assert view.stats.full_recomputes == 1

    def test_tree_edge_delete_forces_full(self):
        g = DynamicGraph(_chain(6))
        view = IncrementalBFS(g, 0)
        view.query()
        g.delete_edges([2], [3])  # lv[3] == lv[2] + 1: potential tree edge
        got = view.query()
        assert view.stats.delete_fallbacks == 1
        assert view.stats.full_recomputes == 2
        assert_same(got, bfs_levels(g.snapshot(), 0), exact=True)
        assert got.get(3) is None  # chain is severed

    def test_cached_hit_on_unchanged_graph(self):
        g = DynamicGraph(_chain(6))
        view = IncrementalBFS(g, 0)
        view.query()
        view.query()
        assert view.stats.cached_hits == 1


class TestIncrementalCC:
    def test_insert_updates_are_exact(self):
        g = DynamicGraph(_random_graph(2))
        view = IncrementalCC(g)
        view.query()
        for step in range(6):
            g.apply(random_edge_batch(100 + step, g.n, inserts=3))
            assert_same(view.query(), connected_components(g.snapshot()), exact=True)
        assert view.stats.full_recomputes == 1

    def test_merge_two_components(self):
        # Min-label propagation adopts from OUT-neighbours (mxv MIN_SECOND),
        # so inserting 2→1 lets vertex 2 adopt component 1's smaller label.
        m = Matrix.from_lists([0, 2], [1, 3], [1.0, 1.0], 4, 4, FP64)
        g = DynamicGraph(m)
        view = IncrementalCC(g)
        labels = view.query()
        assert labels[2] != labels[1]
        g.insert_edges([2], [1], [1.0])
        labels = view.query()
        assert view.stats.incremental_updates == 1
        assert labels[2] == labels[1]
        assert_same(labels, connected_components(g.snapshot()), exact=True)

    def test_any_effective_delete_forces_full(self):
        g = DynamicGraph(_chain(5))
        view = IncrementalCC(g)
        view.query()
        g.delete_edges([1], [2])
        got = view.query()
        assert view.stats.delete_fallbacks == 1
        assert_same(got, connected_components(g.snapshot()), exact=True)


class TestIncrementalPageRank:
    def test_warm_restart_matches_cold(self):
        g = DynamicGraph(_random_graph(3))
        view = IncrementalPageRank(g, tol=1e-12, max_iter=300)
        view.query()
        for step in range(4):
            g.apply(random_edge_batch(200 + step, g.n, inserts=4, deletes=2,
                                      existing=g.edges()))
            got = view.query()
            cold = pagerank(g.snapshot(), tol=1e-12, max_iter=300)
            assert same(got, cold, exact=False, rtol=1e-6)
        assert view.stats.full_recomputes == 1
        assert view.stats.incremental_updates == 4
        assert view.stats.delete_fallbacks == 0  # deletes survive warm restart

    def test_warm_start_size_validated(self):
        m = _chain(5)
        from repro.core.vector import Vector

        with pytest.raises(InvalidValueError):
            pagerank(m, warm_start=Vector.sparse(FP64, 4))


class TestRecomputePolicy:
    def test_size_fallback_triggers(self):
        g = DynamicGraph(_random_graph(4, n=16, density=0.3))
        view = IncrementalBFS(
            g, 0, policy=RecomputePolicy(max_delta_fraction=0.01, min_delta_ops=2)
        )
        view.query()
        g.apply(random_edge_batch(9, g.n, inserts=8))
        got = view.query()
        assert view.stats.size_fallbacks == 1
        assert view.stats.full_recomputes == 2
        assert_same(got, bfs_levels(g.snapshot(), 0), exact=True)

    def test_detached_view_needs_manual_invalidate(self):
        g = DynamicGraph(_chain(6))
        view = IncrementalBFS(g, 0)
        view.query()
        g.detach(view)
        g.insert_edges([0], [5], [1.0])
        # Detached views stop receiving batch notifications; the caller
        # owns invalidation from that point on.
        view.invalidate()
        got = view.query()
        assert view.stats.full_recomputes == 2
        assert_same(got, bfs_levels(g.snapshot(), 0), exact=True)


class TestViewsAcrossBackends:
    def test_mixed_churn_matches_oracle(self, backend):
        g = DynamicGraph(_random_graph(5))
        bfs = IncrementalBFS(g, 0)
        cc = IncrementalCC(g)
        pr = IncrementalPageRank(g, tol=1e-12, max_iter=300)
        for step in range(4):
            g.apply(
                random_edge_batch(300 + step, g.n, inserts=5, deletes=2,
                                  existing=g.edges())
            )
            snap = g.snapshot()
            assert_same(bfs.query(), bfs_levels(snap, 0), exact=True)
            assert_same(cc.query(), connected_components(snap), exact=True)
            assert same(
                pr.query(), pagerank(snap, tol=1e-12, max_iter=300),
                exact=False, rtol=1e-6,
            )
