"""CSRMatrix container: construction, canonical invariants, transforms."""

import numpy as np
import pytest

from repro.containers.coo import COO
from repro.containers.csr import CSRMatrix
from repro.exceptions import (
    IndexOutOfBoundsError,
    InvalidObjectError,
    InvalidValueError,
)
from repro.types import FP64, INT64


@pytest.fixture
def m():
    # [[0, 1, 0], [2, 0, 3], [0, 0, 0], [4, 0, 0]]
    return CSRMatrix.from_dense(
        np.array([[0, 1, 0], [2, 0, 3], [0, 0, 0], [4, 0, 0]], dtype=np.float64)
    )


class TestConstruction:
    def test_empty(self):
        e = CSRMatrix.empty(3, 4, FP64)
        assert e.shape == (3, 4) and e.nvals == 0
        e.validate()

    def test_empty_negative_dims_raise(self):
        with pytest.raises(InvalidValueError):
            CSRMatrix.empty(-1, 2, FP64)

    def test_from_dense_roundtrip(self, m):
        d = m.to_dense()
        np.testing.assert_array_equal(
            d, [[0, 1, 0], [2, 0, 3], [0, 0, 0], [4, 0, 0]]
        )

    def test_from_dense_rejects_1d(self):
        with pytest.raises(InvalidValueError):
            CSRMatrix.from_dense(np.zeros(3))

    def test_from_coo(self):
        coo = COO(2, 2, [0, 1], [1, 0], [5.0, 6.0])
        m = CSRMatrix.from_coo(coo)
        assert m.get(0, 1) == 5.0 and m.get(1, 0) == 6.0
        m.validate()

    def test_type_inferred_from_values(self, m):
        assert m.type is FP64


class TestAccess:
    def test_nvals_shape(self, m):
        assert m.nvals == 4
        assert m.shape == (4, 3)

    def test_row(self, m):
        idx, vals = m.row(1)
        np.testing.assert_array_equal(idx, [0, 2])
        np.testing.assert_array_equal(vals, [2.0, 3.0])

    def test_row_empty(self, m):
        idx, vals = m.row(2)
        assert idx.size == 0 and vals.size == 0

    def test_row_out_of_bounds(self, m):
        with pytest.raises(IndexOutOfBoundsError):
            m.row(4)

    def test_get(self, m):
        assert m.get(1, 2) == 3.0
        assert m.get(1, 1) is None

    def test_get_out_of_bounds(self, m):
        with pytest.raises(IndexOutOfBoundsError):
            m.get(0, 3)
        with pytest.raises(IndexOutOfBoundsError):
            m.get(-1, 0)

    def test_row_degrees(self, m):
        np.testing.assert_array_equal(m.row_degrees(), [1, 2, 0, 1])

    def test_iter_triplets_row_major(self, m):
        trips = list(m.iter_triplets())
        assert trips == [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0), (3, 0, 4.0)]

    def test_nbytes_positive(self, m):
        assert m.nbytes > 0


class TestTransforms:
    def test_transpose_values(self, m):
        t = m.transpose()
        assert t.shape == (3, 4)
        np.testing.assert_array_equal(t.to_dense(), m.to_dense().T)
        t.validate()

    def test_double_transpose_identity(self, m):
        tt = m.transpose().transpose()
        np.testing.assert_array_equal(tt.to_dense(), m.to_dense())

    def test_transpose_empty(self):
        t = CSRMatrix.empty(2, 5, FP64).transpose()
        assert t.shape == (5, 2) and t.nvals == 0

    def test_to_coo_roundtrip(self, m):
        rt = CSRMatrix.from_coo(m.to_coo())
        np.testing.assert_array_equal(rt.to_dense(), m.to_dense())

    def test_copy_independent(self, m):
        c = m.copy()
        c.values[0] = 99.0
        assert m.values[0] != 99.0

    def test_astype(self, m):
        i = m.astype(INT64)
        assert i.type is INT64
        assert i.values.dtype == np.int64

    def test_astype_same_type_is_noop(self, m):
        assert m.astype(FP64) is m

    def test_to_dense_custom_fill(self, m):
        d = m.to_dense(fill=-1)
        assert d[0, 0] == -1


class TestValidation:
    def test_validate_catches_bad_indptr(self, m):
        m.indptr[1] = 99
        with pytest.raises(InvalidObjectError):
            m.validate()

    def test_validate_catches_unsorted_columns(self):
        bad = CSRMatrix(1, 3, [0, 2], [2, 0], [1.0, 2.0])
        with pytest.raises(InvalidObjectError):
            bad.validate()

    def test_validate_catches_out_of_range_column(self):
        bad = CSRMatrix(1, 2, [0, 1], [5], [1.0])
        with pytest.raises(InvalidObjectError):
            bad.validate()

    def test_validate_catches_length_mismatch(self):
        bad = CSRMatrix(1, 3, [0, 2], [0, 1], [1.0])
        with pytest.raises(InvalidObjectError):
            bad.validate()
