"""Sort-free fast-path reductions — the semiring dispatch layer.

Every expand–sort–reduce kernel (push SpMV, SpGEMM) historically paid an
O(m log m) ``np.argsort`` on the output keys before ``segment_reduce``.
For the standard additive monoids the sort is unnecessary: the grouped
reduction lowers directly onto a *dense accumulator* indexed by key —

- **PLUS** → ``np.bincount(keys, weights)`` (float64) or ``np.add.at``;
- **MIN / MAX / TIMES / LAND-like folds** → ``np.ufunc.at`` into an
  identity-filled accumulator;
- **LOR** → a boolean scatter (duplicate writes are idempotent);
- **LXOR** → parity of the per-key true count (bincount);
- **FIRST / ANY / SECOND** → a reversed / forward scatter (last write wins).

All of these are single C-level passes — 15–50× faster than the stable sort
they replace at benchmark scales — and *order-exact*: ``ufunc.at`` is an
unbuffered sequential loop, so values combine in expansion order, which is
exactly the within-key order a stable sort would have produced for
``reduceat``.  The one subtlety is float32 PLUS: ``np.bincount`` accumulates
in float64, which would not be bit-identical to a float32 fold, so only
float64 takes the bincount lane and every other dtype uses ``np.add.at`` in
the value dtype.

The public surface is a dispatch table keyed on
``(add.name, mult.name, dtype)`` (:func:`fast_path_key`,
:func:`has_fast_path`) plus the keyed reduction itself
(:func:`fast_reduce_by_key`).  Unknown monoids return ``None`` and callers
fall back to the generic sort + :func:`~.segments.segment_reduce` path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ...core.monoid import Monoid
from ...core.semiring import Semiring
from ...types import from_dtype

__all__ = [
    "fast_reduce_by_key",
    "reduce_strategy",
    "has_fast_reduce",
    "fast_path_key",
    "has_fast_path",
    "dense_keyspace_ok",
    "scratch",
    "mask_slot_map",
    "FAST_PATH_TABLE",
]


# ---------------------------------------------------------------------------
# Reusable scratch workspaces
# ---------------------------------------------------------------------------
#
# Kernel-sized temporaries (the SpGEMM expansion, mask probes) are the hot
# path's dominant allocations: several MB per call, returned to the OS on
# free, re-faulted on the next call.  Keeping one grow-only buffer per role
# makes the pages stay resident — the CPU mirror of a GPU backend's
# persistent device workspace.  Buffers are keyed by (tag, dtype); a view of
# the requested size is returned and is valid only until the next request
# for the same tag.

_SCRATCH: Dict[Tuple[str, np.dtype], np.ndarray] = {}


def scratch(tag: str, size: int, dtype) -> np.ndarray:
    """A reusable uninitialised buffer of ``size`` elements for ``tag``."""
    key = (tag, np.dtype(dtype))
    buf = _SCRATCH.get(key)
    if buf is None or buf.size < size:
        cap = 1 << max(10, int(size - 1).bit_length() if size > 1 else 0)
        buf = np.empty(cap, dtype=dtype)
        _SCRATCH[key] = buf
    return buf[:size]


def mask_slot_map(keyspace: int) -> np.ndarray:
    """Zero-filled int32 map over the output keyspace, reused across calls.

    Callers scatter ``slot + 1`` at allowed keys, probe, and MUST restore
    the written entries to zero before returning (the all-zeros invariant is
    what makes reuse O(nnz(mask)) instead of O(keyspace) per call).
    """
    key = ("mask_slot_map", np.dtype(np.int32))
    buf = _SCRATCH.get(key)
    if buf is None or buf.size < keyspace:
        cap = 1 << max(10, int(keyspace - 1).bit_length() if keyspace > 1 else 0)
        buf = np.zeros(cap, dtype=np.int32)
        _SCRATCH[key] = buf
    return buf[:keyspace]


# ---------------------------------------------------------------------------
# Per-monoid dense-accumulator strategies
# ---------------------------------------------------------------------------
#
# Each strategy receives (keys, values, n_out, monoid) with keys in
# [0, n_out) and returns the *dense* accumulator array of length n_out; the
# dispatcher compacts it to present keys.  Cells never observed through a
# key hold the monoid identity and are dropped by the dispatcher, so the
# identity value is never emitted.


def _reduce_plus(keys, values, n_out, monoid):
    if values.dtype == np.float64:
        # bincount accumulates float64 natively: a sequential 0.0 + x fold
        # per key in input order.  NOT bit-equal to np.add.reduceat (which
        # folds pairwise) — every caller that can fall back to a sorted
        # path must reduce with this same strategy over compacted keys
        # (see spgemm._sorted_reduce_flat) to keep results branch-invariant.
        return np.bincount(keys, weights=values, minlength=n_out)
    acc = np.zeros(n_out, dtype=values.dtype)
    np.add.at(acc, keys, values)
    return acc


def _ufunc_at_reducer(uf: np.ufunc):
    def reduce(keys, values, n_out, monoid):
        ident = monoid.identity(from_dtype(values.dtype))
        acc = np.full(n_out, ident, dtype=values.dtype)
        uf.at(acc, keys, values)
        return acc

    return reduce


def _reduce_lor(keys, values, n_out, monoid):
    acc = np.zeros(n_out, dtype=bool)
    acc[keys[values.astype(bool)]] = True
    return acc


def _reduce_land(keys, values, n_out, monoid):
    acc = np.ones(n_out, dtype=bool)
    acc[keys[~values.astype(bool)]] = False
    return acc


def _reduce_lxor(keys, values, n_out, monoid):
    par = np.bincount(keys[values.astype(bool)], minlength=n_out)
    return (par & 1).astype(bool)


def _reduce_first(keys, values, n_out, monoid):
    # Last write wins, so scatter in reverse to keep the first occurrence.
    acc = np.empty(n_out, dtype=values.dtype)
    acc[keys[::-1]] = values[::-1]
    return acc


def _reduce_second(keys, values, n_out, monoid):
    acc = np.empty(n_out, dtype=values.dtype)
    acc[keys] = values
    return acc


_REDUCERS: Dict[str, Callable] = {
    "PLUS": _reduce_plus,
    "TIMES": _ufunc_at_reducer(np.multiply),
    "MIN": _ufunc_at_reducer(np.minimum),
    "MAX": _ufunc_at_reducer(np.maximum),
    "LOR": _reduce_lor,
    "LAND": _reduce_land,
    "LXOR": _reduce_lxor,
    "FIRST": _reduce_first,
    "ANY": _reduce_first,  # ANY keeps the first stored value, like reduce_array
    "SECOND": _reduce_second,
}

# Logical strategies reduce in BOOL regardless of the value dtype (their
# sorted counterparts — logical_or.reduceat etc. — do the same; the caller
# casts to the output domain afterwards).
_BOOL_RESULT = {"LOR", "LAND", "LXOR"}


def reduce_strategy(monoid: Monoid) -> Optional[Callable]:
    """The dense-accumulator strategy for a monoid, or None."""
    return _REDUCERS.get(monoid.op.name)


def has_fast_reduce(monoid: Monoid) -> bool:
    return monoid.op.name in _REDUCERS


def fast_reduce_by_key(
    keys: np.ndarray,
    values: np.ndarray,
    n_out: int,
    monoid: Monoid,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Grouped reduction without sorting.

    ``keys`` (int64 in ``[0, n_out)``, any order, duplicates allowed) and
    ``values`` are parallel arrays; returns ``(unique_sorted_keys, reduced)``
    — exactly what stable-sort + :func:`~.segments.segment_reduce` produces —
    or ``None`` when the monoid has no sort-free lowering.
    """
    fn = _REDUCERS.get(monoid.op.name)
    if fn is None:
        return None
    if keys.size == 0:
        out_dtype = bool if monoid.op.name in _BOOL_RESULT else values.dtype
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=out_dtype)
    counts = np.bincount(keys, minlength=n_out)
    idx = np.flatnonzero(counts).astype(np.int64)
    acc = fn(keys, values, n_out, monoid)
    return idx, acc[idx]


def dense_keyspace_ok(n_out: int, m: int) -> bool:
    """Is a dense length-``n_out`` accumulator affordable for ``m`` entries?

    The dense strategies cost O(n_out) memory; gate them so a tiny frontier
    never allocates a huge accumulator (where the O(m log m) sort is cheap
    anyway).
    """
    return n_out <= max(8 * m, 1 << 16)


# ---------------------------------------------------------------------------
# The (add, mult, dtype) dispatch table
# ---------------------------------------------------------------------------

# Memoised resolution results; introspectable by tests and docs.
FAST_PATH_TABLE: Dict[Tuple[str, str, str], bool] = {}


def fast_path_key(semiring: Semiring, dtype) -> Tuple[str, str, str]:
    """Dispatch key: ``(add.name, mult.name, dtype.name)``."""
    return (semiring.add.op.name, semiring.mult.name, np.dtype(dtype).name)


def has_fast_path(semiring: Semiring, dtype) -> bool:
    """Does ``semiring`` over ``dtype`` lower onto a sort-free reduction?

    The multiply half never blocks the fast path (products are computed the
    same way on both paths); the key exists so the table mirrors how a real
    code-generating backend would specialise per (add, mult, dtype) triple,
    and so dtype-specific lanes (float64 PLUS → bincount) are visible.
    """
    key = fast_path_key(semiring, dtype)
    hit = FAST_PATH_TABLE.get(key)
    if hit is None:
        hit = has_fast_reduce(semiring.add)
        FAST_PATH_TABLE[key] = hit
    return hit
