"""Per-device scheduling for the simulated cluster.

A :class:`SimCluster` owns P simulated devices, one comm stream per
device, one single-device executor
(:class:`~repro.backends.cuda_sim.backend.CudaSimBackend` bound to that
device) per shard, and one :class:`~repro.distributed.comm.CommModel`.

The execution model is BSP-with-overlap:

- shard-local kernels run on each device's default timeline, so devices
  advance independently (compute overlaps across devices);
- a collective first *barriers* (event-sync every stream to the furthest
  device clock — the straggler defines the start), then charges its
  modeled duration to every device: communication sits on the critical
  path, compute does not serialise across devices;
- the cluster's makespan is the furthest device clock, i.e.
  max-over-devices(compute) + Σ comm — the standard multi-GPU BFS/SpMV
  cost structure (GraphBLAST, Gunrock).

Comm charges are recorded on each device profiler with ``kind="comm"``, a
class the single-device aggregates (kernel time, transfer time, launch
count, H2D bytes) ignore by construction, so per-device counters keep
meaning exactly what they mean on one device.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import List, Tuple

from ..gpu.device import Device, DeviceProperties, K40
from ..gpu.graph import GraphStats, KernelGraph, NullKernelGraph
from ..gpu.profiler import LaunchRecord
from ..gpu.stream import Stream
from ..sanitizer import runtime as _gbsan
from .comm import CommModel
from .topology import DGX_NVLINK, Topology

__all__ = ["OrderingEdge", "SimCluster", "ClusterKernelGraph"]


@dataclass(frozen=True)
class OrderingEdge:
    """One explicit cluster-wide synchronisation point.

    Every :meth:`SimCluster.barrier` and every collective charged through
    :meth:`SimCluster.charge_comm` appends one edge to
    :attr:`SimCluster.edges` instead of ordering devices only through
    charge-time clock side effects.  The edge is the unit gbsan's
    happens-before checker consumes (all participating device/stream
    timelines merge at an edge), and it doubles as an audit trail: the
    sequence of edges *is* the cluster's synchronisation history.
    """

    kind: str  # "barrier" or the collective primitive name
    seq: int  # position in the cluster's edge history
    time_us: float  # cluster clock when the edge takes effect
    duration_us: float = 0.0  # modeled duration (collectives only)
    nbytes: float = 0.0  # total bytes moved (collectives only)
    participants: Tuple[int, ...] = ()  # device ordinals synchronised

    def __str__(self) -> str:
        extra = f" {self.nbytes:.0f}B/{self.duration_us:.1f}us" if self.nbytes else ""
        return f"edge#{self.seq} {self.kind}@{self.time_us:.1f}us{extra}"


class SimCluster:
    """P simulated devices + streams + executors + one comm model."""

    def __init__(
        self,
        nparts: int,
        props: DeviceProperties = K40,
        topology: Topology = DGX_NVLINK,
    ) -> None:
        from ..backends.cuda_sim.backend import CudaSimBackend

        self.nparts = int(nparts)
        self.props = props
        self.topology = topology
        self.devices: List[Device] = [Device(props) for _ in range(self.nparts)]
        self.streams: List[Stream] = [Stream(dev) for dev in self.devices]
        self.executors = [CudaSimBackend(device=dev) for dev in self.devices]
        self.comm = CommModel(topology, self.nparts)
        # Explicit synchronisation history; see OrderingEdge.
        self.edges: List[OrderingEdge] = []

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def makespan_us(self) -> float:
        """The cluster finishes when its last device does."""
        return max(dev.clock_us for dev in self.devices)

    def _note_edge(self, edge: OrderingEdge) -> OrderingEdge:
        """Record one explicit ordering edge and feed it to the sanitizer."""
        self.edges.append(edge)
        san = _gbsan.ACTIVE
        if san is not None:
            san.on_cluster_edge(edge, self.devices, self.streams)
        return edge

    def barrier(self) -> float:
        """Event-synchronise every device to the furthest clock.

        The clock/timeline movements below charge the barrier's *time*; its
        *ordering* is published as an explicit :class:`OrderingEdge` so
        consumers (gbsan's happens-before checker, diagnostics) never have
        to reverse-engineer it from charge-time side effects.
        """
        for s, d in zip(self.streams, self.devices):
            if d.clock_us > s.timeline_us:
                s.timeline_us = d.clock_us
        events = [s.record_event() for s in self.streams]
        for s in self.streams:
            for ev in events:
                s.wait_event(ev)
        t = self.streams[0].timeline_us if self.streams else 0.0
        for d in self.devices:
            if d.clock_us < t:
                d.advance(t - d.clock_us)
        self._note_edge(
            OrderingEdge(
                kind="barrier",
                seq=len(self.edges),
                time_us=t,
                participants=tuple(range(self.nparts)),
            )
        )
        return t

    def charge_comm(self, primitive: str, duration_us: float, nbytes: float) -> None:
        """Charge one collective: barrier, then ``duration_us`` everywhere.

        A collective contributes two ordering edges: the entry barrier
        (recorded by :meth:`barrier`) and a completion edge recorded here —
        participants are mutually ordered again once the exchanged data has
        landed.
        """
        if self.nparts <= 1 or duration_us <= 0.0:
            return
        start = self.barrier()
        per_dev_bytes = nbytes / self.nparts
        for s, d in zip(self.streams, self.devices):
            s.enqueue(duration_us)
            d._profiler.record(
                LaunchRecord(
                    name=f"comm_{primitive}",
                    kind="comm",
                    start_us=start,
                    duration_us=duration_us,
                    bytes=per_dev_bytes,
                )
            )
        self._note_edge(
            OrderingEdge(
                kind=primitive,
                seq=len(self.edges),
                time_us=start + duration_us,
                duration_us=duration_us,
                nbytes=nbytes,
                participants=tuple(range(self.nparts)),
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Fresh clocks, profilers, allocators, residency, comm counters."""
        for ex in self.executors:
            ex.evict_all()
        for dev in self.devices:
            dev.reset()
        for s, d in zip(self.streams, self.devices):
            s.timeline_us = d.clock_us
        self.comm.stats.reset()
        self.edges.clear()

    def evict_all(self) -> None:
        for ex in self.executors:
            ex.evict_all()

    # ------------------------------------------------------------------
    # Aggregated metrics (for benchmarks)
    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """Cluster-wide counters: per-device sums plus comm and makespan."""
        launches = sum(d.profiler.launch_count for d in self.devices)
        h2d = sum(d.profiler.h2d_bytes for d in self.devices)
        kernel_us = max(d.profiler.kernel_time_us for d in self.devices)
        transfer_us = max(d.profiler.transfer_time_us for d in self.devices)
        return {
            "nparts": self.nparts,
            "kernel_launches": launches,
            "h2d_bytes": h2d,
            "max_kernel_time_us": round(kernel_us, 3),
            "max_transfer_time_us": round(transfer_us, 3),
            "makespan_us": round(self.makespan_us, 3),
            "comm": self.comm.stats.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SimCluster P={self.nparts} {self.props.name} "
            f"{self.topology.name} t={self.makespan_us:.1f}us>"
        )


class ClusterKernelGraph:
    """Per-device capture/replay graphs entered as one scope.

    Each device captures its own shard-local launch sequence (signatures
    can legitimately differ across devices — degree-balanced shards do
    different work), so replay elides per-launch overhead independently on
    every device, exactly as P concurrent CUDA Graphs would.
    """

    __slots__ = ("name", "_graphs")

    def __init__(self, name: str, cluster: SimCluster, enabled: bool = True) -> None:
        self.name = name
        if enabled:
            self._graphs = [
                KernelGraph(name, device=dev) for dev in cluster.devices
            ]
        else:
            self._graphs = [NullKernelGraph(name)]

    @contextmanager
    def iteration(self):
        with ExitStack() as stack:
            for g in self._graphs:
                stack.enter_context(g.iteration())
            yield self

    @property
    def stats(self) -> GraphStats:
        """Summed capture/replay counters across the member graphs."""
        agg = GraphStats()
        for g in self._graphs:
            agg.captures += g.stats.captures
            agg.replays += g.stats.replays
            agg.launches_elided += g.stats.launches_elided
            agg.overhead_saved_us += g.stats.overhead_saved_us
        return agg
