"""Tier-1 coverage for the repro.testing fuzz harness.

The nightly CI job runs thousands of fuzz programs; this file pins a
bounded, deterministic slice of the same machinery so every PR exercises
program generation, differential execution on all backend specs, the
metamorphic and conservation suites, and the shrinker — in a few seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import (
    DEFAULT_SPECS,
    GRAPH_RECIPES,
    SEMIRING_POOL,
    SMOKE_SPECS,
    Program,
    annotate_exactness,
    build_env,
    generate_program,
    run_conservation_suite,
    run_differential,
    run_metamorphic_suite,
    shrink,
    write_repro,
)
from repro.testing.executor import Divergence, execute
from repro.testing.fuzz import _load_program
from repro.testing.shrink import _drop_op, result_slots


# ---------------------------------------------------------------------------
# Program generation
# ---------------------------------------------------------------------------


class TestProgramGeneration:
    def test_same_seed_same_program(self):
        for seed in range(20):
            a = generate_program(seed)
            b = generate_program(seed)
            assert a.to_json() == b.to_json()

    def test_serialization_round_trip(self):
        for seed in range(20):
            p = generate_program(seed)
            q = Program.from_json(p.to_json())
            assert q.to_dict() == p.to_dict()

    def test_op_kind_coverage(self):
        """Every op kind the generator knows must actually be emitted."""
        seen = set()
        for seed in range(300):
            seen.update(o["op"] for o in generate_program(seed).ops)
        expected = {
            "mxv", "vxm", "mxm", "ewise_add", "ewise_mult", "apply",
            "select", "reduce", "reduce_to_vector", "extract", "assign",
            "transpose",
        }
        assert expected <= seen

    def test_semiring_pool_excludes_nondeterministic_any(self):
        assert "ANY_FIRST" not in SEMIRING_POOL
        assert "ANY_SECOND" not in SEMIRING_POOL
        # but the counting ANY_PAIR (all inputs equal) stays in the pool
        assert "ANY_PAIR" in SEMIRING_POOL

    def test_graph_recipe_coverage(self):
        seen = {generate_program(seed).graph["generator"] for seed in range(300)}
        assert seen == set(GRAPH_RECIPES)

    def test_every_recipe_builds(self):
        for name in GRAPH_RECIPES:
            p = Program(
                graph={"generator": name, "size": 12, "seed": 3, "weighted": True},
                seed=0,
                ops=[],
            )
            env = build_env(p)
            assert env.matrices[0].nrows == env.n

    def test_exactness_annotation_matches_op_count(self):
        for seed in range(20):
            p = generate_program(seed)
            flags = annotate_exactness(p)
            assert len(flags) == len(p.ops)
            assert all(isinstance(f, bool) for f in flags)


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_smoke_specs_agree(self):
        for seed in range(30):
            d = run_differential(generate_program(seed), SMOKE_SPECS)
            assert d is None, str(d)

    def test_full_spec_matrix_agrees(self):
        """All nine specs, including every multi_sim P/splitter combo."""
        for seed in range(12):
            d = run_differential(generate_program(seed), DEFAULT_SPECS)
            assert d is None, str(d)

    def test_execute_snapshot_per_op(self):
        p = generate_program(5)
        snaps = execute(p, "reference")
        assert len(snaps) == len(p.ops)

    def test_injected_value_error_is_caught(self):
        """A single wrong stored value must surface as a Divergence."""
        p = generate_program(0)
        oracle = execute(p, "reference")
        # Find a vector-valued snapshot and corrupt one value.
        from repro import Vector

        for i, s in enumerate(oracle):
            if isinstance(s, Vector) and s.nvals:
                idx, vals = s.indices_array(), s.values_array().copy()
                vals[0] += 1.0
                corrupt = Vector.from_lists(idx, vals, s.size, s.type)
                from repro.testing.equivalence import same

                assert not same(corrupt, s, exact=True)
                assert not same(corrupt, s, exact=False)
                break
        else:
            pytest.skip("no non-empty vector snapshot in this program")

    def test_divergence_formatting(self):
        d = Divergence("cpu", 2, "mxv", "values differ")
        assert "cpu" in str(d) and "mxv" in str(d) and "#2" in str(d)


# ---------------------------------------------------------------------------
# Metamorphic + conservation suites (bounded samples of the nightly lanes)
# ---------------------------------------------------------------------------


class TestInvariantSuites:
    @pytest.mark.parametrize("seed", [0, 7, 19])
    def test_metamorphic_suite_clean(self, seed):
        assert run_metamorphic_suite(seed) == []

    @pytest.mark.parametrize("seed", [1, 13])
    def test_conservation_suite_clean(self, seed):
        assert run_conservation_suite(generate_program(seed)) == []


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


class TestShrinker:
    def test_cascade_drop_keeps_programs_executable(self):
        """Dropping any op (plus dependents, with slot remap) stays valid."""
        for seed in range(25):
            p = generate_program(seed)
            for i in range(len(p.ops)):
                cand = _drop_op(p, i)
                if cand is None or not cand.ops:
                    continue
                execute(cand, "reference")  # must not raise

    def test_result_slots_align_with_env(self):
        p = generate_program(9)
        env = build_env(p)
        execute(p, "reference")
        slots = result_slots(p)
        assert len(slots) == len(p.ops)
        # Slot indices start right after the initial env contents.
        kinds = [k for k, _ in slots]
        first_v = next((s for k, s in slots if k == "v"), None)
        if first_v is not None:
            assert first_v == 2  # two seed vectors
        first_m = next((s for k, s in slots if k == "m"), None)
        if first_m is not None:
            assert first_m == 1  # one seed graph matrix
        assert set(kinds) <= {"v", "m", "s"}

    def test_shrinks_synthetic_failure_to_one_op(self):
        """A bug 'triggered by any mxm' must shrink to a single-op program."""
        prog = next(
            p for p in (generate_program(s) for s in range(300))
            if any(o["op"] == "mxm" for o in p.ops) and len(p.ops) >= 4
        )

        def still_fails(cand):
            execute(cand, "reference")  # candidate must stay well-formed
            return any(o["op"] == "mxm" for o in cand.ops)

        small = shrink(prog, still_fails)
        assert len(small.ops) == 1
        assert small.ops[0]["op"] == "mxm"
        assert small.ops[0].get("mask") is None
        assert small.ops[0].get("accum") is None
        assert small.graph["size"] <= prog.graph["size"]

    def test_shrinker_rejects_raising_candidates(self):
        p = generate_program(2)

        def still_fails(cand):
            if len(cand.ops) < len(p.ops):
                raise RuntimeError("probe crashed")
            return True

        small = shrink(p, still_fails, max_probes=50)
        assert small.to_json()  # never adopted a crashing candidate

    def test_write_repro_round_trip(self, tmp_path):
        p = generate_program(11)
        d = Divergence("cuda_sim", 0, p.ops[0]["op"], "synthetic")
        path = write_repro(p, d, tmp_path)
        assert path.exists() and path.name.startswith("test_shrunk_")
        loaded = _load_program(path)
        assert loaded.to_dict() == p.to_dict()
        # The emitted file is a self-contained passing pytest module.
        ns: dict = {}
        exec(compile(path.read_text(), str(path), "exec"), ns, ns)
        test_fns = [v for k, v in ns.items() if k.startswith("test_")]
        assert len(test_fns) == 1
        test_fns[0]()  # p is not actually failing, so the repro passes


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------


class TestFuzzCLI:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        from repro.testing.fuzz import main

        rc = main([
            "--programs", "4", "--seed", "0", "--smoke",
            "--metamorphic-every", "2", "--conservation-every", "0",
            "--invalid-every", "2", "--repro-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz passed" in out
        assert not list(tmp_path.glob("test_shrunk_*.py"))

    def test_replay_json_program(self, tmp_path, capsys):
        from repro.testing.fuzz import main

        p = generate_program(6)
        path = tmp_path / "prog.json"
        path.write_text(p.to_json())
        assert main(["--replay", str(path), "--smoke"]) == 0
        assert "replay passed" in capsys.readouterr().out

    def test_explicit_backend_list(self, capsys):
        from repro.testing.fuzz import main

        rc = main([
            "--programs", "2", "--seed", "3",
            "--backends", "reference,cpu,multi_sim:2:degree_balanced",
            "--metamorphic-every", "0", "--conservation-every", "0",
            "--invalid-every", "0", "--no-repro",
        ])
        assert rc == 0
        assert "3 backend specs" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Backend-fixture opt-out plumbing (conftest no_multi_sim marker)
# ---------------------------------------------------------------------------


@pytest.mark.no_multi_sim
class TestBackendFixtureOptOut:
    def test_multi_sim_param_is_skipped(self, backend):
        assert backend in ("reference", "cpu", "cuda_sim")


class TestBackendFixtureMultiSim:
    def test_multi_sim_param_present(self, backend, small_graph):
        """The shared fixture runs multi_sim (P=2, degree_balanced) too."""
        import repro as gb
        from repro.core.semiring import PLUS_TIMES

        w = gb.vxm(
            gb.Vector.sparse(gb.FP64, 6),
            gb.Vector.from_lists([0], [1.0], 6, gb.FP64),
            small_graph,
            PLUS_TIMES,
        )
        assert w.nvals == 2  # 0->1 (1), 0->2 (4)
        assert sorted(w.indices_array().tolist()) == [1, 2]
