"""Multi-source BFS and output-aliasing semantics of operations."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms import bfs_levels, bfs_levels_multi
from repro.core import operations as ops
from repro.core.operators import PLUS
from repro.core.semiring import LOR_LAND, PLUS_TIMES


class TestMultiSourceBfs:
    def test_matches_single_source(self, backend):
        g = gb.generators.rmat(scale=6, edge_factor=6, seed=1)
        sources = [0, 3, 12]
        levels = bfs_levels_multi(g, sources)
        assert levels.shape == (3, g.nrows)
        for k, s in enumerate(sources):
            single = bfs_levels(g, s)
            got = {
                j: levels.get(k, j)
                for j in range(g.nrows)
                if levels.get(k, j) is not None
            }
            expect = dict(zip(*single.to_lists()))
            assert got == expect

    def test_source_level_zero(self, backend):
        g = gb.generators.path_graph(6)
        levels = bfs_levels_multi(g, [2, 4])
        assert levels.get(0, 2) == 0 and levels.get(1, 4) == 0

    def test_empty_sources(self, backend):
        g = gb.generators.path_graph(4)
        levels = bfs_levels_multi(g, [])
        assert levels.shape == (0, 4)

    def test_duplicate_sources_rejected(self, backend):
        g = gb.generators.path_graph(4)
        with pytest.raises(gb.InvalidValueError):
            bfs_levels_multi(g, [1, 1])

    def test_source_out_of_range(self, backend):
        g = gb.generators.path_graph(4)
        with pytest.raises(gb.IndexOutOfBoundsError):
            bfs_levels_multi(g, [9])

    def test_disconnected_rows_independent(self, backend):
        # Two components: each row only covers its own.
        g = gb.Matrix.from_lists([0, 1, 2, 3], [1, 0, 3, 2], [1.0] * 4, 4, 4)
        levels = bfs_levels_multi(g, [0, 2])
        assert levels.get(0, 2) is None
        assert levels.get(1, 0) is None
        assert levels.get(0, 1) == 1 and levels.get(1, 3) == 1


class TestOutputAliasing:
    """GraphBLAS allows the output to alias an input; results must be as if
    the input were fully read first."""

    def test_vxm_in_place(self, backend):
        a = gb.Matrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        v = gb.Vector.from_lists([0], [2.0], 2)
        expected = gb.Vector.sparse(gb.FP64, 2)
        ops.vxm(expected, v, a, PLUS_TIMES)
        ops.vxm(v, v, a, PLUS_TIMES)  # w aliases u
        assert v == expected

    def test_mxv_in_place(self, backend):
        a = gb.Matrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        v = gb.Vector.from_dense(np.array([1.0, 2.0]))
        expected = gb.Vector.sparse(gb.FP64, 2)
        ops.mxv(expected, a, v, PLUS_TIMES)
        ops.mxv(v, a, v, PLUS_TIMES)
        assert v == expected

    def test_ewise_out_aliases_lhs(self, backend):
        u = gb.Vector.from_lists([0, 1], [1.0, 2.0], 3)
        v = gb.Vector.from_lists([1, 2], [10.0, 20.0], 3)
        expected = gb.Vector.sparse(gb.FP64, 3)
        ops.ewise_add(expected, u, v, PLUS)
        ops.ewise_add(u, u, v, PLUS)
        assert u == expected

    def test_ewise_both_operands_same(self, backend):
        u = gb.Vector.from_lists([0], [3.0], 2)
        ops.ewise_add(u, u, u, PLUS)
        assert u.get(0) == 6.0

    def test_mxm_squaring_in_place(self, backend):
        a = gb.Matrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        expected = gb.Matrix.sparse(gb.FP64, 2, 2)
        ops.mxm(expected, a, a, PLUS_TIMES)
        ops.mxm(a, a, a, PLUS_TIMES)  # C aliases A and B
        assert a == expected

    def test_apply_in_place(self, backend):
        from repro.core.operators import AINV

        u = gb.Vector.from_lists([1], [5.0], 3)
        ops.apply(u, u, AINV)
        assert u.get(1) == -5.0

    def test_transpose_in_place(self, backend):
        a = gb.Matrix.from_lists([0], [1], [3.0], 2, 2)
        ops.transpose(a, a)
        assert a.get(1, 0) == 3.0 and a.get(0, 1) is None

    def test_masked_in_place_with_self_mask(self, backend):
        # w<w> = w + w: mask is the output and an input simultaneously.
        u = gb.Vector.from_lists([0, 2], [1.0, 2.0], 3, gb.FP64)
        mask = u
        ops.ewise_add(u, u, u, PLUS, mask=mask)
        assert u.to_lists() == ([0, 2], [2.0, 4.0])
