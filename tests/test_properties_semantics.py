"""Hypothesis property tests on GraphBLAS operation semantics.

Invariants tested against dense NumPy oracles and algebraic laws:
- mxv/mxm over (PLUS, TIMES) match dense products on the present pattern;
- eWiseAdd is commutative for commutative ops; eWiseMult intersects;
- masks partition output (mask ∪ complement = unmasked, disjoint);
- transpose distributes over ewise ops.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.core import operations as ops
from repro.core.operators import MAX, MIN, PLUS, TIMES
from repro.core.semiring import MIN_PLUS, PLUS_TIMES


@st.composite
def sparse_pair(draw, n=15):
    """Two dense arrays of the same size with zeros as implicit."""
    elems = st.floats(min_value=-50, max_value=50, allow_nan=False)
    a = np.array(draw(st.lists(elems, min_size=n, max_size=n)))
    b = np.array(draw(st.lists(elems, min_size=n, max_size=n)))
    za = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool)
    zb = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool)
    a[za] = 0.0
    b[zb] = 0.0
    return a, b


@st.composite
def small_system(draw, m=8, n=6):
    elems = st.floats(min_value=-20, max_value=20, allow_nan=False)
    A = np.array(draw(st.lists(elems, min_size=m * n, max_size=m * n))).reshape(m, n)
    u = np.array(draw(st.lists(elems, min_size=n, max_size=n)))
    zA = np.array(
        draw(st.lists(st.booleans(), min_size=m * n, max_size=m * n)), dtype=bool
    ).reshape(m, n)
    zu = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool)
    A[zA] = 0.0
    u[zu] = 0.0
    return A, u


class TestProductProperties:
    @given(small_system())
    @settings(max_examples=50, deadline=None)
    def test_mxv_plus_times_matches_dense_on_pattern(self, sys):
        A, u = sys
        w = gb.Vector.sparse(gb.FP64, A.shape[0])
        ops.mxv(w, gb.Matrix.from_dense(A), gb.Vector.from_dense(u), PLUS_TIMES)
        dense = A @ u
        for i, v in zip(*w.to_lists()):
            np.testing.assert_allclose(v, dense[i], atol=1e-8)
        # Absent rows have no present products.
        present = set(w.to_lists()[0])
        for i in range(A.shape[0]):
            if i not in present:
                assert not np.any((A[i] != 0) & (u != 0))

    @given(small_system())
    @settings(max_examples=50, deadline=None)
    def test_mxv_min_plus_upper_bounded_by_any_product(self, sys):
        A, u = sys
        w = gb.Vector.sparse(gb.FP64, A.shape[0])
        ops.mxv(w, gb.Matrix.from_dense(A), gb.Vector.from_dense(u), MIN_PLUS)
        for i, v in zip(*w.to_lists()):
            candidates = [
                A[i, j] + u[j]
                for j in range(A.shape[1])
                if A[i, j] != 0 and u[j] != 0
            ]
            assert v == min(candidates)

    @given(small_system())
    @settings(max_examples=30, deadline=None)
    def test_vxm_equals_mxv_of_transpose(self, sys):
        A, u = sys
        At = A.T  # u has size n = A.ncols; vxm needs u over rows
        w1 = gb.Vector.sparse(gb.FP64, A.shape[0])
        ops.vxm(w1, gb.Vector.from_dense(u), gb.Matrix.from_dense(At), PLUS_TIMES)
        w2 = gb.Vector.sparse(gb.FP64, A.shape[0])
        ops.mxv(w2, gb.Matrix.from_dense(A), gb.Vector.from_dense(u), PLUS_TIMES)
        assert w1.to_lists()[0] == w2.to_lists()[0]
        np.testing.assert_allclose(w1.values_array(), w2.values_array(), atol=1e-9)


class TestEwiseProperties:
    @given(sparse_pair())
    @settings(max_examples=60, deadline=None)
    def test_add_commutative_for_plus(self, pair):
        a, b = pair
        va, vb = gb.Vector.from_dense(a), gb.Vector.from_dense(b)
        w1 = gb.Vector.sparse(gb.FP64, a.size)
        ops.ewise_add(w1, va, vb, PLUS)
        w2 = gb.Vector.sparse(gb.FP64, a.size)
        ops.ewise_add(w2, vb, va, PLUS)
        assert w1 == w2

    @given(sparse_pair())
    @settings(max_examples=60, deadline=None)
    def test_add_structure_is_union(self, pair):
        a, b = pair
        w = gb.Vector.sparse(gb.FP64, a.size)
        ops.ewise_add(w, gb.Vector.from_dense(a), gb.Vector.from_dense(b), MIN)
        expected = set(np.flatnonzero(a)) | set(np.flatnonzero(b))
        assert set(w.to_lists()[0]) == expected

    @given(sparse_pair())
    @settings(max_examples=60, deadline=None)
    def test_mult_structure_is_intersection(self, pair):
        a, b = pair
        w = gb.Vector.sparse(gb.FP64, a.size)
        ops.ewise_mult(w, gb.Vector.from_dense(a), gb.Vector.from_dense(b), TIMES)
        expected = set(np.flatnonzero(a)) & set(np.flatnonzero(b))
        assert set(w.to_lists()[0]) == expected

    @given(sparse_pair())
    @settings(max_examples=40, deadline=None)
    def test_add_max_idempotent(self, pair):
        a, _ = pair
        va = gb.Vector.from_dense(a)
        w = gb.Vector.sparse(gb.FP64, a.size)
        ops.ewise_add(w, va, va, MAX)
        assert w == va


class TestMaskProperties:
    @given(sparse_pair(), st.lists(st.integers(0, 14), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_mask_and_complement_partition(self, pair, mask_idx):
        a, _ = pair
        src = gb.Vector.from_dense(a)
        mask = gb.Vector.from_lists(
            sorted(set(mask_idx)), [True] * len(set(mask_idx)), a.size, gb.BOOL
        )
        from repro.core.operators import IDENTITY

        w_m = gb.Vector.sparse(gb.FP64, a.size)
        ops.apply(w_m, src, IDENTITY, mask=mask)
        w_c = gb.Vector.sparse(gb.FP64, a.size)
        ops.apply(w_c, src, IDENTITY, mask=mask, desc=gb.COMP_MASK)
        got = set(w_m.to_lists()[0]) | set(w_c.to_lists()[0])
        assert got == set(np.flatnonzero(a))
        assert not (set(w_m.to_lists()[0]) & set(w_c.to_lists()[0]))


class TestTransposeProperties:
    @given(st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_transpose_distributes_over_ewise_add(self, seed):
        rng = np.random.default_rng(seed)
        A = rng.random((6, 8))
        B = rng.random((6, 8))
        A[A < 0.5] = 0
        B[B < 0.5] = 0
        ma, mb = gb.Matrix.from_dense(A), gb.Matrix.from_dense(B)
        lhs = gb.Matrix.sparse(gb.FP64, 8, 6)
        tmp = gb.Matrix.sparse(gb.FP64, 6, 8)
        ops.ewise_add(tmp, ma, mb, PLUS)
        ops.transpose(lhs, tmp)
        rhs = gb.Matrix.sparse(gb.FP64, 8, 6)
        ta = gb.Matrix.sparse(gb.FP64, 8, 6)
        tb = gb.Matrix.sparse(gb.FP64, 8, 6)
        ops.transpose(ta, ma)
        ops.transpose(tb, mb)
        ops.ewise_add(rhs, ta, tb, PLUS)
        assert lhs == rhs
