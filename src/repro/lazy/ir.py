"""Lazy expression IR: op nodes and the values that flow between them.

Frontend calls on vector-valued operations record a :class:`Node` instead
of executing; the node bundles the op's *run closure* (the original eager
body, operating on resolved containers) with its inputs and the parameters
the optimizer passes inspect.  A :class:`LazyValue` is one pending output:
it remembers its producing node, a weak reference to the Vector handle it
was recorded into (liveness: a value whose handle died or moved on is a
dead materialization), and — once the flush executed the node — the
concrete container.

The IR is deliberately flat: a flush is a program-ordered tape of nodes,
and every pass (fusion, dead-materialization elimination, mask sinking,
direction selection, loop capture) is a linear walk over that tape.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["LazyValue", "Node", "RunFn"]

#: A node's run closure: ``run(resolved_inputs, params) -> container(s)``.
#: Scalar nodes return the scalar; multi-output nodes return a tuple in
#: output order; fused scalar nodes return ``(*containers, scalar)``.
RunFn = Callable[[Dict[str, Any], Dict[str, Any]], Any]


class Node:
    """One recorded operation on the lazy tape."""

    __slots__ = (
        "op",
        "run",
        "inputs",
        "params",
        "backend",
        "outputs",
        "scalar",
        "value",
        "done",
    )

    def __init__(
        self,
        op: str,
        run: RunFn,
        inputs: Dict[str, Any],
        params: Dict[str, Any],
        backend: Any,
        scalar: bool = False,
    ) -> None:
        self.op = op
        self.run = run
        # name -> LazyValue (pending), container (concrete), or None.
        self.inputs = inputs
        self.params = params
        self.backend = backend
        self.outputs: Tuple["LazyValue", ...] = ()
        self.scalar = scalar
        self.value: Any = None
        self.done = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "pending"
        return f"<Node {self.op} {state}>"


class LazyValue:
    """One pending op output, owned (weakly) by a Vector handle."""

    __slots__ = ("node", "owner", "container")

    def __init__(
        self, node: Node, owner: Optional["weakref.ref[Any]"] = None
    ) -> None:
        self.node = node
        self.owner = owner
        self.container: Any = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ready" if self.container is not None else "pending"
        return f"<LazyValue {self.node.op} {state}>"
