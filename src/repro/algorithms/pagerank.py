"""PageRank via repeated vxm over the arithmetic semiring.

The row-stochastic transition matrix is built with GraphBLAS primitives
(row-sum reduce → reciprocal apply → diagonal mxm), and the power iteration
handles dangling vertices (zero out-degree) by redistributing their mass
uniformly — the standard formulation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core import operations as ops
from ..core.fused import ewise_apply
from ..core.matrix import Matrix
from ..core.operators import ABS, MINUS, MINV, PLUS, TIMES
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import FP64

__all__ = ["pagerank", "row_stochastic"]


def row_stochastic(g: Matrix) -> Tuple[Matrix, Vector]:
    """(M, dangling): M = D⁻¹·g with rows normalised; dangling row-sum=0.

    ``dangling`` is a BOOL-ish vector marking zero-out-degree vertices
    (value 1.0 at each dangling vertex).
    """
    n = g.nrows
    if n != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    gf = g if g.type is FP64 else Matrix(g.container.astype(FP64))
    outdeg = Vector.sparse(FP64, n)
    ops.reduce_to_vector(outdeg, gf, PLUS_MONOID)
    inv = Vector.sparse(FP64, n)
    ops.apply(inv, outdeg, MINV)
    dinv = Matrix.from_lists(
        inv.indices_array(), inv.indices_array(), inv.values_array(), n, n, FP64
    )
    m = Matrix.sparse(FP64, n, n)
    ops.mxm(m, dinv, gf, PLUS_TIMES)
    dangling = Vector.full(1.0, n, FP64)
    for i in outdeg.indices_array():
        dangling.remove_element(int(i))
    return m, dangling


def pagerank(
    g: Matrix,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
) -> Vector:
    """PageRank vector (dense; sums to 1). Converges in L1 norm to ``tol``."""
    if not 0.0 <= damping < 1.0:
        raise InvalidValueError(f"damping must be in [0, 1), got {damping}")
    n = g.nrows
    if n == 0:
        return Vector.sparse(FP64, 0)
    m, dangling = row_stochastic(g)
    r = Vector.full(1.0 / n, n, FP64)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        # Mass parked on dangling vertices, redistributed uniformly.
        dmass = 0.0
        if dangling.nvals:
            captured = Vector.sparse(FP64, n)
            ops.ewise_mult(captured, r, dangling, TIMES)
            dmass = float(ops.reduce(captured, PLUS_MONOID))
        r_new = Vector.sparse(FP64, n)
        ops.vxm(r_new, r, m, PLUS_TIMES)
        ops.apply(r_new, r_new, TIMES, bind_first=damping)
        base = teleport + damping * dmass / n
        shifted = Vector.full(base, n, FP64)
        ops.ewise_add(shifted, shifted, r_new, PLUS)
        r_new = shifted
        # L1 convergence check — |r_new − r| in one fused pass.
        diff = Vector.sparse(FP64, n)
        ewise_apply(diff, r_new, r, MINUS, ABS)
        delta = float(ops.reduce(diff, PLUS_MONOID))
        r = r_new
        if delta < tol:
            break
    return r
