"""Dense bitmap vector container.

A bitmap vector stores a dense value array plus a dense presence mask.  It is
the format of choice when a vector is nearly full (PageRank ranks, SSSP
distances, CC labels) — the GPU kernels in GBTL-CUDA likewise switch between
sparse frontiers and dense state vectors.  Conversion to/from
:class:`~repro.containers.sparsevec.SparseVector` is O(n).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import IndexOutOfBoundsError, InvalidObjectError
from ..types import GrBType, from_dtype
from .sparsevec import SparseVector

__all__ = ["BitmapVector"]


class BitmapVector:
    """Dense values + dense boolean presence mask."""

    __slots__ = ("size", "mask", "dense", "type")

    def __init__(self, size: int, mask: np.ndarray, dense: np.ndarray, typ: Optional[GrBType] = None):
        self.size = int(size)
        self.mask = np.ascontiguousarray(mask, dtype=bool)
        dense = np.asarray(dense)
        if typ is not None:
            dense = dense.astype(typ.dtype, copy=False)
        self.dense = np.ascontiguousarray(dense)
        self.type = typ if typ is not None else from_dtype(self.dense.dtype)

    @classmethod
    def empty(cls, size: int, typ: GrBType) -> "BitmapVector":
        return cls(size, np.zeros(size, dtype=bool), np.zeros(size, dtype=typ.dtype), typ)

    @classmethod
    def full(cls, size: int, value, typ: GrBType) -> "BitmapVector":
        return cls(size, np.ones(size, dtype=bool), np.full(size, value, dtype=typ.dtype), typ)

    @classmethod
    def from_sparse(cls, sv: SparseVector) -> "BitmapVector":
        out = cls.empty(sv.size, sv.type)
        out.mask[sv.indices] = True
        out.dense[sv.indices] = sv.values
        return out

    @property
    def nvals(self) -> int:
        return int(np.count_nonzero(self.mask))

    @property
    def nbytes(self) -> int:
        return self.mask.nbytes + self.dense.nbytes

    def get(self, i: int):
        if not 0 <= i < self.size:
            raise IndexOutOfBoundsError(f"index {i} outside [0, {self.size})")
        return self.dense[i] if self.mask[i] else None

    def set(self, i: int, value) -> None:
        if not 0 <= i < self.size:
            raise IndexOutOfBoundsError(f"index {i} outside [0, {self.size})")
        self.mask[i] = True
        self.dense[i] = value

    def to_sparse(self) -> SparseVector:
        idx = np.flatnonzero(self.mask)
        return SparseVector(self.size, idx, self.dense[idx].copy(), self.type)

    def copy(self) -> "BitmapVector":
        return BitmapVector(self.size, self.mask.copy(), self.dense.copy(), self.type)

    def validate(self) -> None:
        if self.mask.shape != (self.size,) or self.dense.shape != (self.size,):
            raise InvalidObjectError("bitmap arrays have wrong length")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitmapVector(size={self.size}, nvals={self.nvals}, {self.type.name})"
