"""Delta-COO overlay over a base CSR.

The overlay accumulates pending edge operations (normalized, last-wins
across batches) without touching the base CSR.  Point reads consult the
overlay first, then the base; :func:`merge_overlay` materialises the final
``(indptr, indices, values)`` arrays with one vectorised three-way merge —
the host semantics of the device-side compaction kernel the cost model
charges (see :mod:`repro.streaming.graph`).

Merge semantics per ``(i, j)``:

- pending **insert** wins over any base entry (upsert);
- pending **delete** removes the base entry if present, else it is a no-op;
- untouched base entries pass through bit-identically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..containers.csr import CSRMatrix
from .batch import EdgeBatch

__all__ = ["DeltaOverlay", "merge_overlay"]


class DeltaOverlay:
    """Pending normalized delta ops, last-wins across absorbed batches."""

    __slots__ = ("rows", "cols", "vals", "is_insert")

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.rows = np.empty(0, dtype=np.int64)
        self.cols = np.empty(0, dtype=np.int64)
        self.vals = np.empty(0, dtype=np.float64)
        self.is_insert = np.empty(0, dtype=bool)

    def __len__(self) -> int:
        return int(self.rows.size)

    @property
    def nbytes(self) -> int:
        """Footprint of the pending delta (what a device upload would move)."""
        return int(
            self.rows.nbytes + self.cols.nbytes + self.vals.nbytes
            + self.is_insert.nbytes
        )

    def absorb(self, batch: EdgeBatch) -> None:
        """Fold one batch in; later ops override earlier pending ops."""
        nb = batch.normalized()
        if len(nb) == 0:
            return
        if len(self) == 0:
            self.rows, self.cols = nb.rows.copy(), nb.cols.copy()
            self.vals, self.is_insert = nb.vals.copy(), nb.is_insert.copy()
            return
        combined = EdgeBatch(
            np.concatenate([self.rows, nb.rows]),
            np.concatenate([self.cols, nb.cols]),
            np.concatenate([self.vals, nb.vals]),
            np.concatenate([self.is_insert, nb.is_insert]),
        ).normalized()
        self.rows, self.cols = combined.rows, combined.cols
        self.vals, self.is_insert = combined.vals, combined.is_insert

    def get(self, i: int, j: int) -> Optional[Tuple[bool, float]]:
        """The pending op for ``(i, j)``: ``(is_insert, value)`` or None."""
        lo = int(np.searchsorted(self.rows, i, side="left"))
        hi = int(np.searchsorted(self.rows, i, side="right"))
        k = lo + int(np.searchsorted(self.cols[lo:hi], j))
        if k < hi and self.cols[k] == j:
            return bool(self.is_insert[k]), float(self.vals[k])
        return None


def merge_overlay(
    base: CSRMatrix, overlay: DeltaOverlay
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise ``base ⊕ overlay`` as new CSR arrays.

    Vectorised three-way merge: concatenate base triplets (first) with the
    pending delta (second), take the *last* entry of every ``(row, col)``
    group — so pending ops shadow base entries — then drop groups whose
    final op is a delete.  Equivalent to rebuilding from scratch, which the
    overlay property tests check bit-for-bit.
    """
    if len(overlay) == 0:
        return base.indptr.copy(), base.indices.copy(), base.values.copy()
    b_rows = np.repeat(np.arange(base.nrows, dtype=np.int64), np.diff(base.indptr))
    all_rows = np.concatenate([b_rows, overlay.rows])
    all_cols = np.concatenate([base.indices, overlay.cols])
    all_vals = np.concatenate(
        [base.values.astype(np.float64, copy=False), overlay.vals]
    )
    keep_op = np.concatenate(
        [np.ones(b_rows.size, dtype=bool), overlay.is_insert]
    )
    # Stable sort by (row, col); within a group base precedes delta because
    # base entries come first in the concatenation order.
    order = np.lexsort((np.arange(all_rows.size), all_cols, all_rows))
    r, c = all_rows[order], all_cols[order]
    last = np.ones(r.size, dtype=bool)
    if r.size > 1:
        last[:-1] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
    sel = order[last]
    survives = keep_op[sel]
    sel = sel[survives]
    out_rows, out_cols = all_rows[sel], all_cols[sel]
    out_vals = all_vals[sel].astype(base.type.dtype, copy=False)
    indptr = np.zeros(base.nrows + 1, dtype=np.int64)
    if out_rows.size:
        np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, out_cols, out_vals
