"""Betweenness centrality — batched Brandes in GraphBLAS form.

The forward sweep is BFS with path counting: the frontier's values are
numbers of shortest paths (``vxm`` over (PLUS, TIMES) masked by unvisited).
The backward sweep pushes dependency contributions down the BFS DAG with
the transposed product.  This is GBTL's ``bc.hpp`` / the algorithm of
Brandes (2001) restated over semirings; with multiple sources the sweeps
batch naturally (we loop sources, which keeps the code one-vector simple).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core import operations as ops
from ..core.descriptor import Descriptor, TRANSPOSE_A
from ..core.matrix import Matrix
from ..core.operators import DIV, MINV, ONE, PLUS, TIMES
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES
from ..core.vector import Vector
from ..exceptions import IndexOutOfBoundsError, InvalidValueError
from ..types import FP64

__all__ = ["betweenness_centrality"]

_UNVISITED = Descriptor(complement_mask=True, structural_mask=True, replace=True)


def _single_source_dependencies(g: Matrix, source: int) -> Vector:
    """Brandes dependency vector δ_s(v) for one source."""
    n = g.nrows
    # Forward: sigma[level] = #shortest paths reaching each frontier vertex.
    sigmas = []
    seen = Vector.sparse(FP64, n)
    seen.set_element(source, 1.0)
    frontier = seen.dup()
    while True:
        nxt = Vector.sparse(FP64, n)
        ops.vxm(nxt, frontier, g, PLUS_TIMES, mask=seen, desc=_UNVISITED)
        if not nxt.nvals:
            break
        sigmas.append(nxt.dup())
        ops.ewise_add(seen, seen, nxt, PLUS)
        frontier = nxt
    # The source's own sigma (level 0) sits in front.
    base = Vector.sparse(FP64, n)
    base.set_element(source, 1.0)
    sigmas.insert(0, base)
    # Backward: delta accumulates (sigma_d(w) absent ⇒ no term).
    delta = Vector.sparse(FP64, n)
    for d in range(len(sigmas) - 1, 0, -1):
        w_level = sigmas[d]
        # t = (1 + delta(w)) / sigma(w) on level-d vertices.
        t = Vector.sparse(FP64, n)
        ops.apply(t, delta, PLUS, bind_first=1.0, mask=w_level, desc=Descriptor(structural_mask=True, replace=True))
        # Vertices with no delta yet still contribute 1/sigma.
        missing = Vector.sparse(FP64, n)
        ops.apply(
            missing,
            w_level,
            TIMES,
            bind_first=0.0,
            mask=delta,
            desc=Descriptor(complement_mask=True, structural_mask=True, replace=True),
        )
        ops.apply(missing, missing, PLUS, bind_first=1.0)
        ops.ewise_add(t, t, missing, PLUS)
        ops.ewise_mult(t, t, w_level, DIV)
        # Push along incoming edges: contribution to level d-1 vertices.
        back = Vector.sparse(FP64, n)
        ops.mxv(back, g, t, PLUS_TIMES)
        contrib = Vector.sparse(FP64, n)
        ops.ewise_mult(contrib, back, sigmas[d - 1], TIMES)
        ops.ewise_add(delta, delta, contrib, PLUS)
    return delta


def betweenness_centrality(
    g: Matrix,
    sources: Optional[Sequence[int]] = None,
    normalize: bool = False,
) -> Vector:
    """Betweenness centrality (unweighted shortest paths).

    ``sources=None`` uses every vertex (exact BC); a subset gives the usual
    sampled approximation.  For undirected graphs pass the symmetric
    adjacency and halve externally if you need the undirected convention
    (this function counts directed paths, matching GBTL).
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    n = g.nrows
    # Path *counts* ignore weights: work on the 0/1 pattern.
    pattern = Matrix.sparse(FP64, n, n)
    ops.apply(pattern, g, ONE)
    g = pattern
    srcs: Iterable[int] = range(n) if sources is None else sources
    bc = Vector.sparse(FP64, n)
    for s in srcs:
        if not 0 <= s < n:
            raise IndexOutOfBoundsError(f"source {s} outside [0, {n})")
        delta = _single_source_dependencies(g, s)
        # A vertex's dependency for paths *ending* at it is excluded by
        # construction; its own source term must also be dropped.
        delta.remove_element(s)
        ops.ewise_add(bc, bc, delta, PLUS)
    if normalize and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
        ops.apply(bc, bc, TIMES, bind_first=scale)
    return bc
