"""Typed queries, results, and batch-compatibility keys.

A query names one unit of per-user work against a shared resident graph.
Four types cover the serving scenarios the north-star asks for:

- :class:`BfsQuery` — full hop-distance map from one source;
- :class:`KHopQuery` — the bounded neighborhood: vertices within ``hops``
  hops, with their distances;
- :class:`PprQuery` — personalized PageRank scores from one source
  (fixed-iteration, so results are batch-composition-independent);
- :class:`FeatureQuery` — per-vertex feature lookup (out-degree and
  triangle count) from the graph's materialised feature store.

Queries carry a **coalesce key** (:meth:`Query.coalesce_key`): two queries
with equal keys on the same graph may be executed in one batched launch.
Hop-bounded traversals share a key regardless of ``hops`` — a deeper batch
subsumes a shallower query, whose result is recovered by filtering its row
to ``level <= hops`` — but *unbounded* BFS pools separately: one full-BFS
passenger would force a whole k-hop batch to run to fixpoint, forfeiting
the ``max_level`` early exit that makes bounded batches cheap.  PPR
queries only coalesce when ``(damping, iters)`` agree, since those change
the numbers.

The contract every batch path must honor (and the metamorphic invariant
checks): executing a query in *any* batch is element-wise identical to
executing it alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

__all__ = [
    "Query",
    "BfsQuery",
    "KHopQuery",
    "PprQuery",
    "FeatureQuery",
    "QueryResult",
    "Overloaded",
]


class Overloaded(RuntimeError):
    """Typed admission-control rejection: the tenant's queue is full.

    Raised by :meth:`~repro.serve.service.GraphService.submit` when
    admitting the query would push the tenant's outstanding depth (queued +
    in flight) past its ``max_queue``.  Carries enough context for the
    caller to back off intelligently.
    """

    def __init__(self, tenant: str, depth: int, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} overloaded: {depth} queries outstanding "
            f"(limit {limit})"
        )
        self.tenant = tenant
        self.depth = depth
        self.limit = limit


@dataclass(frozen=True)
class Query:
    """Base query: every query targets one source vertex."""

    source: int

    kind = ""  # class attribute, overridden per subclass (not a field)

    def coalesce_key(self) -> Tuple[Any, ...]:
        """Queries with equal keys may share one batched launch."""
        raise NotImplementedError

    def validate(self, n: int) -> None:
        from ..exceptions import IndexOutOfBoundsError

        if not 0 <= self.source < n:
            raise IndexOutOfBoundsError(
                f"query source {self.source} outside [0, {n})"
            )


@dataclass(frozen=True)
class BfsQuery(Query):
    """Full BFS hop-distance map from ``source``."""

    kind = "bfs"

    def coalesce_key(self) -> Tuple[Any, ...]:
        # Full traversals run to fixpoint, so they must not share a pool
        # with hop-bounded queries (they would void the early exit).
        return ("traverse", "full")


@dataclass(frozen=True)
class KHopQuery(Query):
    """Vertices within ``hops`` hops of ``source`` with their distances."""

    hops: int = 2
    kind = "khop"

    def coalesce_key(self) -> Tuple[Any, ...]:
        # All bounded depths coalesce: the deepest query sets the batch's
        # max_level and shallower rows are filtered to their own bound.
        return ("traverse", "bounded")

    def validate(self, n: int) -> None:
        super().validate(n)
        from ..exceptions import InvalidValueError

        if self.hops < 0:
            raise InvalidValueError(f"hops must be >= 0, got {self.hops}")


@dataclass(frozen=True)
class PprQuery(Query):
    """Personalized PageRank scores from ``source`` (fixed iterations)."""

    damping: float = 0.85
    iters: int = 10
    kind = "ppr"

    def coalesce_key(self) -> Tuple[Any, ...]:
        return ("ppr", self.damping, self.iters)

    def validate(self, n: int) -> None:
        super().validate(n)
        from ..exceptions import InvalidValueError

        if not 0.0 <= self.damping < 1.0:
            raise InvalidValueError(
                f"damping must be in [0, 1), got {self.damping}"
            )
        if self.iters < 1:
            raise InvalidValueError(f"iters must be >= 1, got {self.iters}")


@dataclass(frozen=True)
class FeatureQuery(Query):
    """Per-vertex features of ``source``: (out-degree, triangle count)."""

    kind = "feature"

    def coalesce_key(self) -> Tuple[Any, ...]:
        return ("feature",)


@dataclass(frozen=True)
class QueryResult:
    """A query's payload: parallel index/value arrays.

    - bfs / khop — (vertex ids, hop distances);
    - ppr — (vertex ids, rank scores);
    - feature — indices ``[source]``, values ``[out_degree, triangles]``.

    ``digest()`` is a stable fingerprint of the exact bytes — the unit the
    batched-vs-single bit-identity checks compare, cheap enough to keep for
    tens of thousands of queries.
    """

    kind: str
    indices: np.ndarray
    values: np.ndarray

    def digest(self) -> str:
        h = hashlib.sha1()
        h.update(self.kind.encode())
        for a in (self.indices, self.values):
            arr = np.ascontiguousarray(a)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return (
            self.kind == other.kind
            and bool(np.array_equal(self.indices, other.indices))
            and bool(np.array_equal(self.values, other.values))
        )
