#!/usr/bin/env python
"""Quickstart: GraphBLAS primitives and one algorithm on every backend.

Builds a small weighted digraph, exercises the primitive API (mxv over two
semirings, elementwise ops, reduce), then runs BFS on all three backends and
shows the results agree — the core GBTL claim.

Run:  python examples/quickstart.py
"""

import repro as gb
from repro.core import operations as ops
from repro.core.monoid import PLUS_MONOID
from repro.core.operators import PLUS, TIMES
from repro.core.semiring import MIN_PLUS, PLUS_TIMES


def main() -> None:
    # --- build a graph as a sparse adjacency matrix -----------------------
    #      (0) --1--> (1) --2--> (2)
    #        \--4--------------/  \--3--> (3)
    g = gb.Matrix.from_lists(
        rows=[0, 0, 1, 2],
        cols=[1, 2, 2, 3],
        values=[1.0, 4.0, 2.0, 3.0],
        nrows=4,
        ncols=4,
    )
    print(f"graph: {g}")

    # --- primitives --------------------------------------------------------
    # One step of value propagation from vertex 0 over two semirings.
    x = gb.Vector.from_lists([0], [1.0], 4)

    reached = gb.Vector.sparse(gb.FP64, 4)
    ops.vxm(reached, x, g, PLUS_TIMES)
    print("one hop, (PLUS, TIMES):", dict(zip(*reached.to_lists())))

    dist = gb.Vector.from_lists([0], [0.0], 4)
    step = gb.Vector.sparse(gb.FP64, 4)
    ops.vxm(step, dist, g, MIN_PLUS)
    print("one hop, (MIN, PLUS):  ", dict(zip(*step.to_lists())))

    # Elementwise and reduction.
    doubled = gb.Vector.sparse(gb.FP64, 4)
    ops.apply(doubled, reached, TIMES, bind_first=2.0)
    total = ops.reduce(doubled, PLUS_MONOID)
    print("sum of doubled hop values:", total)

    # Masked write: only vertex 2 may receive the result.
    mask = gb.Vector.from_lists([2], [True], 4, gb.BOOL)
    masked = gb.Vector.sparse(gb.FP64, 4)
    ops.ewise_add(masked, reached, step, PLUS, mask=mask)
    print("masked merge:", dict(zip(*masked.to_lists())))

    # --- one algorithm, three backends -------------------------------------
    big = gb.generators.rmat(scale=10, edge_factor=8, seed=7)
    results = {}
    for backend in gb.available_backends():
        with gb.use_backend(backend):
            results[backend] = gb.algorithms.bfs_levels(big, source=0)
    assert results["reference"] == results["cpu"] == results["cuda_sim"]
    print(
        f"\nBFS on rmat s10 ({big.nvals} edges): "
        f"{results['cpu'].nvals} vertices reached — "
        "identical on reference, cpu, and cuda_sim backends"
    )

    # The simulated GPU kept a profile of what it "ran":
    dev = gb.gpu.get_device()
    print(f"\nsimulated device after BFS: {dev}")
    print(dev.profiler.summary())


if __name__ == "__main__":
    main()
