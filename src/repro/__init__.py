"""repro — a GraphBLAS library with swappable CPU and simulated-GPU backends.

A from-scratch Python reproduction of *GBTL-CUDA: Graph Algorithms and
Primitives for GPUs* (GABB'16): the GraphBLAS primitive set (matrices and
vectors over arbitrary semirings; mxm/mxv/vxm, elementwise, apply, select,
reduce, extract, assign, transpose, kronecker), a strict frontend/backend
split with three interchangeable backends (``reference`` pure-Python oracle,
``cpu`` vectorized NumPy, ``cuda_sim`` simulated GPU), and graph algorithms
(BFS, SSSP, PageRank, triangle counting, connected components, MIS, MST,
k-truss, betweenness centrality) written once against the frontend.

Quickstart::

    import repro as gb

    g = gb.generators.rmat(scale=10, edge_factor=8, seed=1)
    levels = gb.algorithms.bfs_levels(g, source=0)

    with gb.use_backend("cuda_sim"):
        levels_gpu = gb.algorithms.bfs_levels(g, source=0)
    assert levels == levels_gpu
"""

from . import algorithms, containers, generators, gpu, io, lazy, serve
from .backends import (
    available_backends,
    current_backend,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from .core import *  # noqa: F401,F403 — the GraphBLAS API surface
from .core import __all__ as _core_all
from .exceptions import (
    ApiError,
    DeviceError,
    DeviceOutOfMemoryError,
    DimensionMismatchError,
    DomainMismatchError,
    EmptyObjectError,
    ExecutionError,
    GraphBLASError,
    IndexOutOfBoundsError,
    InvalidLaunchError,
    InvalidObjectError,
    InvalidValueError,
    NotImplementedInBackendError,
    OutputNotEmptyError,
)
from .types import (
    ALL_TYPES,
    BOOL,
    FP32,
    FP64,
    GrBType,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    promote,
)

__version__ = "1.0.0"

__all__ = (
    [
        "algorithms",
        "containers",
        "generators",
        "gpu",
        "io",
        "lazy",
        "serve",
        "available_backends",
        "current_backend",
        "get_backend",
        "register_backend",
        "set_default_backend",
        "use_backend",
        "GraphBLASError",
        "ApiError",
        "ExecutionError",
        "DimensionMismatchError",
        "IndexOutOfBoundsError",
        "DomainMismatchError",
        "EmptyObjectError",
        "InvalidValueError",
        "InvalidObjectError",
        "OutputNotEmptyError",
        "NotImplementedInBackendError",
        "DeviceError",
        "DeviceOutOfMemoryError",
        "InvalidLaunchError",
        "GrBType",
        "BOOL",
        "INT8",
        "INT16",
        "INT32",
        "INT64",
        "UINT8",
        "UINT16",
        "UINT32",
        "UINT64",
        "FP32",
        "FP64",
        "ALL_TYPES",
        "promote",
        "__version__",
    ]
    + list(_core_all)
)
