"""Triangle counting via masked SpGEMM (the Cohen / Sandia formulation).

With L the strictly-lower-triangular part of an undirected adjacency matrix,
``C<L> = L ⊗ L`` over the (PLUS, PAIR) semiring counts, for every edge
(i, j) with j < i, the wedges through a vertex k with j > k — i.e. each
triangle exactly once with its vertices ordered.  The global count is then
``reduce(C, +)``.  This is the benchmark kernel of the GraphBLAS triangle-
counting literature and exercises masked mxm.
"""

from __future__ import annotations

from ..core import operations as ops
from ..core.descriptor import STRUCTURE_MASK
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.operators import PLUS, TRIL
from ..core.semiring import PLUS_PAIR
from ..core.vector import Vector
from ..exceptions import InvalidValueError
from ..types import INT64

__all__ = ["triangle_count", "triangles_per_vertex", "lower_triangle"]


def lower_triangle(g: Matrix) -> Matrix:
    """Strictly lower-triangular part of ``g`` (diagonal excluded)."""
    l = Matrix.sparse(g.type, g.nrows, g.ncols)
    ops.select(l, g, TRIL, thunk=-1)
    return l


def triangle_count(g: Matrix) -> int:
    """Number of triangles in the undirected graph ``g``.

    ``g`` must be symmetric (undirected); self-loops are ignored via the
    strict triangle selection.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    l = lower_triangle(g)
    c = Matrix.sparse(INT64, g.nrows, g.ncols)
    ops.mxm(c, l, l, PLUS_PAIR, mask=l, desc=STRUCTURE_MASK)
    return int(ops.reduce(c, PLUS_MONOID))


def triangles_per_vertex(g: Matrix) -> Vector:
    """Triangles incident to each vertex.

    Uses ``C<A> = A ⊗ A`` over (PLUS, PAIR) on the full symmetric adjacency:
    row-sums of C count ordered wedges closing at each vertex; each incident
    triangle contributes 2 (both orientations), so halve.
    """
    if g.nrows != g.ncols:
        raise InvalidValueError(f"adjacency must be square, got {g.shape}")
    c = Matrix.sparse(INT64, g.nrows, g.ncols)
    ops.mxm(c, g, g, PLUS_PAIR, mask=g, desc=STRUCTURE_MASK)
    per = Vector.sparse(INT64, g.nrows)
    ops.reduce_to_vector(per, c, PLUS_MONOID)
    half = Vector.sparse(INT64, g.nrows)
    from ..core.operators import DIV

    ops.apply(half, per, DIV, bind_second=2)
    return half
