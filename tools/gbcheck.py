#!/usr/bin/env python3
"""gbcheck CLI: run the whole-program static analyzer over src/repro.

Exit status is 0 when no *new* findings exist (relative to the baseline,
when one is given), 1 otherwise.

Modes::

    python tools/gbcheck.py                       # text report, fail on any finding
    python tools/gbcheck.py --json out.json       # also write the JSON report
    python tools/gbcheck.py --baseline tools/gbcheck_baseline.json
                                                  # fail only on NEW findings
    python tools/gbcheck.py --update-baseline tools/gbcheck_baseline.json
                                                  # accept current findings
    python tools/gbcheck.py --changed-only REF    # only findings in files
                                                  # changed since git REF
    python tools/gbcheck.py --github              # GitHub annotation output
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.analysis import Baseline, Finding, analyze_tree, findings_to_json  # noqa: E402


def _changed_paths(ref: str) -> Optional[Set[str]]:
    """repro/-rooted paths changed since ``ref`` (None if git fails)."""
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", ref, "--", "src/repro"],
            cwd=_REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    prefix = "src/repro/"
    return {
        line[len(prefix):]
        for line in out.splitlines()
        if line.startswith(prefix) and line.endswith(".py")
    }


def _emit_github(findings: List[Finding]) -> None:
    for f in findings:
        msg = f.message.replace("\n", " ")
        print(
            f"::error file=src/repro/{f.path},line={f.line},"
            f"title=gbcheck {f.rule}::{msg}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="gbcheck", description=__doc__)
    parser.add_argument("--root", type=Path, default=_REPO / "src" / "repro")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="write the JSON findings report to PATH")
    parser.add_argument("--baseline", type=Path, default=None, metavar="PATH",
                        help="fail only on findings absent from this baseline")
    parser.add_argument("--update-baseline", type=Path, default=None,
                        metavar="PATH", help="write current findings as the new baseline")
    parser.add_argument("--changed-only", default=None, metavar="GIT_REF",
                        help="report only findings in files changed since GIT_REF")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub workflow ::error annotations")
    args = parser.parse_args(argv)

    report = analyze_tree(args.root)
    findings = report.findings

    if args.changed_only is not None:
        changed = _changed_paths(args.changed_only)
        if changed is None:
            print(f"gbcheck: warning: git diff against {args.changed_only!r} "
                  "failed; reporting all findings", file=sys.stderr)
        else:
            findings = [f for f in findings if f.path in changed]

    if args.json is not None:
        args.json.write_text(findings_to_json(findings), encoding="utf-8")

    if args.update_baseline is not None:
        Baseline().save(args.update_baseline, findings)
        print(f"gbcheck: baseline updated with {len(findings)} finding(s)")
        return 0

    gate = findings
    if args.baseline is not None:
        gate = Baseline.load(args.baseline).new_findings(findings)

    for f in findings:
        marker = "" if f in gate else " (baselined)"
        print(f"{f}{marker}")
    if args.github and gate:
        _emit_github(gate)

    suffix = f" across {report.modules_analyzed} modules"
    if gate:
        print(f"gbcheck: {len(gate)} new finding(s){suffix}")
        return 1
    if findings:
        print(f"gbcheck: {len(findings)} baselined finding(s), 0 new{suffix}")
    else:
        print(f"gbcheck: clean{suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
