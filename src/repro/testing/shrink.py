"""Greedy program shrinking and regression-repro emission.

Given a failing program and a ``still_fails`` predicate, the shrinker
repeatedly tries smaller candidates — dropping ops (with dependency
cascade), clearing masks/accumulators/descriptors, downgrading semirings,
shrinking the graph, and unweighting values — keeping any candidate that
still fails, until a fixpoint or the probe budget is reached.

The result is written as a **standalone pytest file** under
``tests/regressions/``: the file embeds the shrunk program as JSON and
replays it through :func:`repro.testing.executor.run_differential`, so the
repro needs nothing but the repo itself and stays green once the bug is
fixed.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from .programs import Program

__all__ = ["shrink", "write_repro", "result_slots"]


# Which env pool each op's result lands in ("v" vector, "m" matrix,
# "s" scalar), and which fields of each op reference which pool.
def _result_kind(spec) -> str:
    op = spec["op"]
    if op in ("mxv", "vxm", "reduce_to_vector", "assign") or op.startswith("bad_"):
        return "v"  # invalid-mode ops leave an empty vector placeholder
    if op in ("mxm", "transpose"):
        return "m"
    if op == "reduce":
        return "s"
    return spec["space"]  # ewise/apply/select/extract follow their space


def _refs(spec) -> List[Tuple[str, str]]:
    """(field, pool) pairs naming every env slot this op reads."""
    op = spec["op"]
    out: List[Tuple[str, str]] = []
    if op in ("mxv", "vxm"):
        out += [("a", "m"), ("u", "v"), ("into", "v")]
    elif op == "mxm":
        out += [("a", "m"), ("b", "m"), ("into", "m")]
    elif op in ("ewise_add", "ewise_mult"):
        k = spec["space"]
        out += [("x", k), ("y", k), ("into", k)]
    elif op in ("apply", "select", "extract"):
        k = spec["space"]
        out += [("src", k), ("into", k)]
    elif op == "reduce":
        out += [("src", spec["space"])]
    elif op == "reduce_to_vector":
        out += [("src", "m"), ("into", "v")]
    elif op == "assign":
        out += [("dst", "v"), ("src", "v")]
    elif op == "transpose":
        out += [("a", "m"), ("into", "m")]
    return out


# Initial env slot counts (see programs.build_env): one graph matrix, two
# value vectors.  Masks live in their own pools and are never op results.
_INITIAL = {"v": 2, "m": 1, "s": 0}


def result_slots(program: Program) -> List[Tuple[str, int]]:
    """Per-op (pool, absolute slot index) of the op's result."""
    counts = dict(_INITIAL)
    out = []
    for spec in program.ops:
        k = _result_kind(spec)
        out.append((k, counts[k]))
        counts[k] += 1
    return out


def _drop_op(program: Program, i: int) -> Optional[Program]:
    """Program without op ``i`` (and every op depending on its result)."""
    slots = result_slots(program)
    dead = {i}
    dead_slots = {slots[i]}
    # Later ops referencing a dead slot die too; references above a dead
    # slot shift down by the number of dead slots below them.
    for j in range(i + 1, len(program.ops)):
        spec = program.ops[j]
        for f, pool in _refs(spec):
            ref = spec.get(f)
            if ref is None:
                continue
            if (pool, ref) in dead_slots:
                dead.add(j)
                dead_slots.add(slots[j])
                break
    new_ops = []
    for j, spec in enumerate(program.ops):
        if j in dead:
            continue
        spec = dict(spec)
        for f, pool in _refs(spec):
            ref = spec.get(f)
            if ref is None:
                continue
            shift = sum(1 for (pk, ps) in dead_slots if pk == pool and ps < ref)
            if shift:
                spec[f] = ref - shift
        new_ops.append(spec)
    if len(new_ops) == len(program.ops):
        return None
    return Program(graph=dict(program.graph), seed=program.seed, ops=new_ops)


_SEMIRING_LADDER = ("PLUS_TIMES", "MIN_PLUS", "LOR_LAND")
_MONOID_LADDER = ("PLUS_MONOID", "MIN_MONOID")


def _ladder(current: str, ladder: Tuple[str, ...]) -> Tuple[str, ...]:
    """Strictly-simpler ladder entries only — moving down can't oscillate."""
    if current in ladder:
        return ladder[: ladder.index(current)]
    return ladder


def _simplify_candidates(program: Program, i: int):
    """Yield programs with op ``i`` made simpler in one way."""
    spec = program.ops[i]

    def with_field(**kw) -> Program:
        ops = [dict(o) for o in program.ops]
        ops[i].update(kw)
        return Program(graph=dict(program.graph), seed=program.seed, ops=ops)

    if spec.get("mask") is not None:
        yield with_field(mask=None)
    if spec.get("accum") is not None:
        yield with_field(accum=None)
    if spec.get("desc"):
        yield with_field(desc=[])
    if spec.get("into") is not None:
        yield with_field(into=None)
    if spec.get("direction") not in (None, "auto"):
        yield with_field(direction="auto")
    # Rewire inputs to the base env slots (graph matrix / u0) so the ops
    # that produced the original operands become droppable dead code.
    for f, _pool in _refs(spec):
        if f == "into":
            continue
        ref = spec.get(f)
        if isinstance(ref, int) and ref > 0:
            yield with_field(**{f: 0})
    if "semiring" in spec:
        for name in _ladder(spec["semiring"], _SEMIRING_LADDER):
            yield with_field(semiring=name)
    if "monoid" in spec:
        for name in _ladder(spec["monoid"], _MONOID_LADDER):
            yield with_field(monoid=name)
    if spec.get("unary") not in (None, "IDENTITY"):
        yield with_field(unary="IDENTITY")
    if spec.get("binop") not in (None, "PLUS"):
        yield with_field(binop="PLUS")


def _graph_candidates(program: Program):
    size = int(program.graph["size"])
    for smaller in (size // 2, size // 4, 8, 5):
        if 2 <= smaller < size:
            g = dict(program.graph, size=smaller)
            yield Program(graph=g, seed=program.seed, ops=[dict(o) for o in program.ops])
    if program.graph["weighted"]:
        g = dict(program.graph, weighted=False)
        yield Program(graph=g, seed=program.seed, ops=[dict(o) for o in program.ops])


def shrink(
    program: Program,
    still_fails: Callable[[Program], bool],
    max_probes: int = 400,
) -> Program:
    """Greedily minimise ``program`` while ``still_fails`` holds.

    ``still_fails`` must return True for the input program; candidates that
    raise are treated as not reproducing the failure and rejected.
    """
    probes = 0

    def probe(cand: Program) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        try:
            return bool(still_fails(cand))
        except Exception:
            return False

    current = program
    changed = True
    while changed and probes < max_probes:
        changed = False
        # 1. Drop ops, last first (dropping late ops never cascades).
        for i in reversed(range(len(current.ops))):
            cand = _drop_op(current, i)
            if cand is not None and cand.ops and probe(cand):
                current = cand
                changed = True
                break
        if changed:
            continue
        # 2. Shrink the graph / simplify values.
        for cand in _graph_candidates(current):
            if probe(cand):
                current = cand
                changed = True
                break
        if changed:
            continue
        # 3. Per-op simplification.
        for i in range(len(current.ops)):
            for cand in _simplify_candidates(current, i):
                if probe(cand):
                    current = cand
                    changed = True
                    break
            if changed:
                break
    return current


# ---------------------------------------------------------------------------
# Repro emission
# ---------------------------------------------------------------------------

_REPRO_TEMPLATE = '''"""Auto-generated regression repro (repro.testing.shrink).

Shrunk failing program: {describe}
Original divergence: {divergence}

Reproduce / investigate with::

    PYTHONPATH=src python -m repro.testing.fuzz --replay {filename}

This test stays green once the underlying bug is fixed; keep it as a
permanent regression guard.
"""

from repro.testing.executor import run_differential
from repro.testing.programs import Program

PROGRAM = {program_dict!r}


def test_shrunk_program_{tag}():
    divergence = run_differential(Program.from_dict(PROGRAM))
    assert divergence is None, str(divergence)
'''


def write_repro(
    program: Program,
    divergence,
    directory: Path,
) -> Path:
    """Write a standalone pytest repro; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tag = hashlib.sha1(program.to_json().encode()).hexdigest()[:10]
    path = directory / f"test_shrunk_{tag}.py"
    path.write_text(
        _REPRO_TEMPLATE.format(
            describe=program.describe(),
            divergence=str(divergence),
            filename=path.name,
            program_dict=program.to_dict(),
            tag=tag,
        )
    )
    return path
