"""The four gbcheck dataflow rules.

``access-undeclared-read`` / ``access-undeclared-write`` / ``access-over-declared``
    Rule 1a: infer the payload arrays a kernel's run-closure touches
    (through helper calls) and diff against the declared ``accesses=``.

``launch-undeclared-access``
    Rule 1b: a launch of a kernel with no declared accesses (the
    ``_no_declared_access`` idiom) must declare its operands at the launch
    site via ``san_reads=``/``san_writes=`` when any operand is a container.

``version-bump-missing``
    Rule 2: a store into container payload must reach ``bump_version``/
    ``install_arrays`` on the same base before returning — checked through
    the call graph, so a helper that stores may rely on its caller to bump.

``forcing-point-missing``
    Rule 3: serve/streaming code observing raw container state
    (``._container`` slots, ``install_arrays`` swaps) must be dominated by
    a forcing point (``force``/``sync``/``_settle``/...) either locally or
    at every in-scope call site.

``suppression-unknown-rule`` / ``suppression-placeholder-reason`` / ``suppression-stale``
    Rule 4: every ``# gbsan: ok(rule) -- reason`` directive must name a
    real rule, carry a meaningful reason, and suppress a live finding.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .loader import KernelDecl, Module, Program
from .summaries import (
    PAYLOAD_ATTRS,
    FunctionSummary,
    SummaryKey,
    summarize_lambda,
)

__all__ = [
    "SYNTACTIC_RULES",
    "DATAFLOW_RULES",
    "KNOWN_RULES",
    "Directive",
    "collect_directives",
    "check_kernel_accesses",
    "check_launch_sites",
    "check_version_bumps",
    "check_forcing_points",
    "audit_suppressions",
]

SYNTACTIC_RULES = frozenset(
    {"kernel-decl", "fused-kernel-decl", "container-mutation", "argsort", "uncharged-numpy"}
)
DATAFLOW_RULES = frozenset(
    {
        "access-undeclared-read",
        "access-undeclared-write",
        "access-over-declared",
        "launch-undeclared-access",
        "version-bump-missing",
        "forcing-point-missing",
    }
)
KNOWN_RULES = SYNTACTIC_RULES | DATAFLOW_RULES

#: Module prefixes whose launches / stores are device-orchestration code.
_LAUNCH_SCOPE = ("backends/", "lazy/", "streaming/", "serve/")
_BUMP_SCOPE = ("backends/", "lazy/", "algorithms/", "core/", "serve/", "streaming/")
_FORCING_SCOPE = ("serve/", "streaming/")


def _in_scope(relpath: str, prefixes: Tuple[str, ...]) -> bool:
    return relpath.startswith(prefixes)


# ---------------------------------------------------------------------------
# Rule 1a: kernel access-set inference vs. declaration
# ---------------------------------------------------------------------------

#: classification kinds for an ``accesses=`` expression
_ALL = "all"
_EMPTY = "empty"
_NONE = "none"
_DYNAMIC = "dynamic"
_EXPLICIT = "explicit"


@dataclass(frozen=True)
class _AccessDecl:
    kind: str
    reads: Tuple[int, ...] = ()  # positions into the run params
    writes: Tuple[int, ...] = ()


def _parse_access_body(
    body: ast.expr, params: Sequence[str], vararg: Optional[str]
) -> Optional[_AccessDecl]:
    """Parse ``Access(reads=..., writes=...)`` into param positions."""
    if not (
        isinstance(body, ast.Call)
        and isinstance(body.func, ast.Name)
        and body.func.id == "Access"
    ):
        return None
    if not body.args and not body.keywords:
        return _AccessDecl(_EMPTY)
    names_used = {n.id for n in ast.walk(body) if isinstance(n, ast.Name)}
    if vararg is not None and vararg in names_used:
        return _AccessDecl(_ALL)
    reads: List[int] = []
    writes: List[int] = []
    for kw in body.keywords:
        elems = kw.value.elts if isinstance(kw.value, ast.Tuple) else [kw.value]
        positions: List[int] = []
        for el in elems:
            if not isinstance(el, ast.Name) or el.id not in params:
                return _AccessDecl(_DYNAMIC)
            positions.append(list(params).index(el.id))
        if kw.arg == "reads":
            reads = positions
        elif kw.arg == "writes":
            writes = positions
    return _AccessDecl(_EXPLICIT, tuple(reads), tuple(writes))


def _classify_accesses(
    program: Program, module: Module, decl: KernelDecl, depth: int = 0
) -> _AccessDecl:
    expr = decl.accesses
    if expr is None:
        return _AccessDecl(_NONE)
    if depth > 4:
        return _AccessDecl(_DYNAMIC)
    if isinstance(expr, ast.Lambda):
        params = [a.arg for a in expr.args.args]
        vararg = expr.args.vararg.arg if expr.args.vararg else None
        parsed = _parse_access_body(expr.body, params, vararg)
        return parsed if parsed is not None else _AccessDecl(_DYNAMIC)
    if isinstance(expr, ast.Name):
        resolved = program.resolve_function(module, expr.id)
        if resolved is None:
            return _AccessDecl(_DYNAMIC)
        rmod, rqual = resolved
        fn = rmod.functions[rqual]
        params = [a.arg for a in fn.args.args]
        vararg = fn.args.vararg.arg if fn.args.vararg else None
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                parsed = _parse_access_body(node.value, params, vararg)
                if parsed is not None:
                    return parsed
        return _AccessDecl(_DYNAMIC)
    if isinstance(expr, ast.Attribute) and expr.attr == "accesses":
        if isinstance(expr.value, ast.Name):
            base = program.resolve_kernel(module, expr.value.id)
            if base is not None:
                bmod, bdecl = base
                return _classify_accesses(program, bmod, bdecl, depth + 1)
        return _AccessDecl(_DYNAMIC)
    return _AccessDecl(_DYNAMIC)


def _run_effects(
    program: Program,
    summaries: Dict[SummaryKey, FunctionSummary],
    module: Module,
    decl: KernelDecl,
) -> Optional[Tuple[List[str], Set[int], Set[int]]]:
    """(params, read positions, write positions) for a kernel run-closure."""
    run = decl.run
    s: Optional[FunctionSummary] = None
    if isinstance(run, ast.Lambda):
        s = summarize_lambda(module.relpath, f"<run:{decl.var}>", run)
        # Close over helper calls once; module summaries are already at
        # their fixpoint, so a single mapping pass is transitive.
        for ev in s.calls:
            if ev.is_method:
                continue
            resolved = program.resolve_function(module, ev.func)
            if resolved is None:
                continue
            callee = summaries.get((resolved[0].relpath, resolved[1]))
            if callee is None:
                continue
            for pos, argname in enumerate(ev.args):
                if argname is None or pos >= len(callee.params):
                    continue
                p = callee.params[pos]
                if p in callee.payload_reads:
                    s.payload_reads.add(argname)
                if p in callee.payload_writes:
                    s.payload_writes.add(argname)
    elif isinstance(run, ast.Name):
        resolved = program.resolve_function(module, run.id)
        if resolved is None:
            return None
        s = summaries.get((resolved[0].relpath, resolved[1]))
    if s is None:
        return None
    reads = {s.params.index(p) for n in s.payload_reads if (p := s.root_param(n))}
    writes = {s.params.index(p) for n in s.payload_writes if (p := s.root_param(n))}
    return s.params, reads, writes


def check_kernel_accesses(
    program: Program, summaries: Dict[SummaryKey, FunctionSummary]
) -> List[Finding]:
    findings: List[Finding] = []
    for mod in program.modules.values():
        for decl in mod.kernels.values():
            acc = _classify_accesses(program, mod, decl)
            if acc.kind in (_EMPTY, _NONE, _DYNAMIC):
                continue  # launch-site rule covers empty/none declarations
            effects = _run_effects(program, summaries, mod, decl)
            if effects is None:
                continue
            params, inf_reads, inf_writes = effects
            kname = decl.kernel_name or decl.var
            if acc.kind == _ALL:
                declared_reads: Set[int] = set(range(len(params)))
                declared_writes: Set[int] = set()
                check_over = False
            else:
                declared_reads = set(acc.reads)
                declared_writes = set(acc.writes)
                check_over = True
            for pos in sorted(inf_reads - declared_reads - declared_writes):
                findings.append(
                    Finding(
                        mod.relpath,
                        decl.line,
                        "access-undeclared-read",
                        f"kernel '{kname}' run reads payload of '{params[pos]}' "
                        "which is not in the declared access set; gbsan cannot "
                        "order this read against racing writers",
                        symbol=decl.var,
                    )
                )
            for pos in sorted(inf_writes - declared_writes):
                findings.append(
                    Finding(
                        mod.relpath,
                        decl.line,
                        "access-undeclared-write",
                        f"kernel '{kname}' run writes payload of '{params[pos]}' "
                        "which is not in the declared write set; gbsan cannot "
                        "invalidate residency for this write",
                        symbol=decl.var,
                    )
                )
            if check_over:
                for pos in sorted(declared_writes - inf_writes):
                    findings.append(
                        Finding(
                            mod.relpath,
                            decl.line,
                            "access-over-declared",
                            f"kernel '{kname}' declares a write to "
                            f"'{params[pos]}' its run never performs",
                            symbol=decl.var,
                        )
                    )
                for pos in sorted(declared_reads - inf_reads - inf_writes):
                    findings.append(
                        Finding(
                            mod.relpath,
                            decl.line,
                            "access-over-declared",
                            f"kernel '{kname}' declares a read of "
                            f"'{params[pos]}' its run never performs",
                            symbol=decl.var,
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# Rule 1b: launch sites of undeclared-access kernels
# ---------------------------------------------------------------------------


def _is_container_operand(arg: ast.expr, s: FunctionSummary) -> bool:
    if isinstance(arg, ast.Attribute) and arg.attr in PAYLOAD_ATTRS:
        return True
    if isinstance(arg, ast.Name):
        # A bare name counts only when the function demonstrably treats it
        # as a container (payload access somewhere) — scalars, monoids, and
        # op objects are routinely passed positionally and must not flag.
        return (
            arg.id in s.payload_reads
            or arg.id in s.payload_writes
            or (s.root_param(arg.id) or arg.id) in s.payload_reads
            or (s.root_param(arg.id) or arg.id) in s.payload_writes
        )
    return False


def check_launch_sites(
    program: Program, summaries: Dict[SummaryKey, FunctionSummary]
) -> List[Finding]:
    findings: List[Finding] = []
    for mod in program.modules.values():
        if not _in_scope(mod.relpath, _LAUNCH_SCOPE):
            continue
        for qualname, fn in mod.functions.items():
            s = summaries[(mod.relpath, qualname)]
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "launch"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                ):
                    continue
                resolved_k = program.resolve_kernel(mod, node.args[0].id)
                if resolved_k is None:
                    continue
                kmod, decl = resolved_k
                acc = _classify_accesses(program, kmod, decl)
                if acc.kind not in (_EMPTY, _NONE):
                    continue
                kwargs = {kw.arg for kw in node.keywords}
                if "san_reads" in kwargs or "san_writes" in kwargs:
                    continue
                operands = [a for a in node.args[2:] if _is_container_operand(a, s)]
                if not operands:
                    continue
                kname = decl.kernel_name or decl.var
                findings.append(
                    Finding(
                        mod.relpath,
                        node.lineno,
                        "launch-undeclared-access",
                        f"launch of '{kname}' (no declared accesses) passes "
                        f"{len(operands)} container operand(s) without "
                        "san_reads=/san_writes=; gbsan sees nothing at this site",
                        symbol=qualname,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Rule 2: version-bump soundness through the call graph
# ---------------------------------------------------------------------------


def _resolve_call(
    program: Program,
    module: Module,
    caller_qualname: str,
    func: str,
    is_method: bool,
) -> Optional[Tuple[SummaryKey, int]]:
    """Resolve a call event to ``(summary key, positional offset)``.

    Method calls resolve within the caller's own class (``self._helper``),
    with offset 1 to skip the bound ``self`` param.
    """
    if not is_method:
        resolved = program.resolve_function(module, func)
        if resolved is None:
            return None
        return (resolved[0].relpath, resolved[1]), 0
    if "." in caller_qualname:
        cls = caller_qualname.split(".", 1)[0]
        cand = f"{cls}.{func}"
        if cand in module.functions:
            return (module.relpath, cand), 1
    return None


def _norm_base(s: FunctionSummary, name: str) -> str:
    return s.root_param(name) or name


def check_version_bumps(
    program: Program, summaries: Dict[SummaryKey, FunctionSummary]
) -> List[Finding]:
    # Kernel run helpers are exempt: the launch layer bumps via note_result.
    run_keys: Set[SummaryKey] = set()
    for mod in program.modules.values():
        for decl in mod.kernels.values():
            if isinstance(decl.run, ast.Name):
                resolved = program.resolve_function(mod, decl.run.id)
                if resolved is not None:
                    run_keys.add((resolved[0].relpath, resolved[1]))

    scoped: List[Tuple[Module, str, FunctionSummary]] = []
    for mod in program.modules.values():
        if not _in_scope(mod.relpath, _BUMP_SCOPE):
            continue
        for qualname in mod.functions:
            key = (mod.relpath, qualname)
            if key in run_keys:
                continue
            scoped.append((mod, qualname, summaries[key]))

    synthetic: Dict[SummaryKey, Set[Tuple[str, int]]] = {}
    param_stores: Dict[Tuple[SummaryKey, str], int] = {}
    findings: List[Finding] = []
    for _ in range(6):
        changed = False
        findings = []
        for mod, qualname, s in scoped:
            key = (mod.relpath, qualname)
            events = list(s.stores) + sorted(synthetic.get(key, ()))
            for base, line in events:
                nbase = _norm_base(s, base)
                if any(
                    _norm_base(s, b) == nbase and bl >= line for b, bl in s.bumps
                ):
                    continue
                root = s.root_param(base)
                if root is not None and root != "self":
                    param_stores.setdefault((key, root), line)
                    if root not in s.unbumped_params:
                        s.unbumped_params.add(root)
                        changed = True
                    continue
                if s.is_fresh(base) or base == "self":
                    continue
                findings.append(
                    Finding(
                        mod.relpath,
                        line,
                        "version-bump-missing",
                        f"payload store through '{base}' is not followed by "
                        "bump_version/install_arrays on any path out of "
                        f"{qualname}; aux caches and residency go stale silently",
                        symbol=qualname,
                    )
                )
        # Propagate: a call that hands a name to an unbumped-param callee is
        # itself a store of that name at the call line.
        for mod, qualname, s in scoped:
            key = (mod.relpath, qualname)
            for ev in s.calls:
                resolved = _resolve_call(program, mod, qualname, ev.func, ev.is_method)
                if resolved is None:
                    continue
                ckey, offset = resolved
                callee = summaries.get(ckey)
                if callee is None or not callee.unbumped_params:
                    continue
                for pos, argname in enumerate(ev.args):
                    ppos = pos + offset
                    if argname is None or ppos >= len(callee.params):
                        continue
                    if callee.params[ppos] in callee.unbumped_params:
                        ev_entry = (argname, ev.line)
                        if ev_entry not in synthetic.setdefault(key, set()):
                            synthetic[key].add(ev_entry)
                            changed = True
        if not changed:
            break

    # A param-rooted unbumped store relies on its callers to bump.  If no
    # in-scope caller exists, the function is a public entry point and no
    # one can be assumed to discharge the store — report it directly.
    for (key, root), line in sorted(param_stores.items()):
        relpath, qualname = key
        sites = [
            s_
            for s_ in program.call_sites_of(relpath, qualname)
            if _in_scope(s_[0].relpath, _BUMP_SCOPE)
        ]
        if sites:
            continue
        findings.append(
            Finding(
                relpath,
                line,
                "version-bump-missing",
                f"payload store through param '{root}' is never followed by "
                f"bump_version/install_arrays, and {qualname} has no in-tree "
                "caller that could discharge it; aux caches and residency go "
                "stale silently",
                symbol=qualname,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Rule 3: forcing-point completeness in serve/streaming
# ---------------------------------------------------------------------------


def check_forcing_points(
    program: Program, summaries: Dict[SummaryKey, FunctionSummary]
) -> List[Finding]:
    memo: Dict[SummaryKey, bool] = {}

    def covered(key: SummaryKey, stack: Set[SummaryKey]) -> bool:
        """True if every in-scope call site of ``key`` is force-dominated."""
        if key in memo:
            return memo[key]
        if key in stack:
            return False
        stack.add(key)
        relpath, qualname = key
        sites = [
            (m, c, line)
            for m, c, line in program.call_sites_of(relpath, qualname)
            if _in_scope(m.relpath, _FORCING_SCOPE)
        ]
        ok = bool(sites)
        for m, caller, line in sites:
            cs = summaries[(m.relpath, caller)]
            if cs.forced_before(line):
                continue
            if not covered((m.relpath, caller), stack):
                ok = False
                break
        stack.discard(key)
        memo[key] = ok
        return ok

    findings: List[Finding] = []
    for mod in program.modules.values():
        if not _in_scope(mod.relpath, _FORCING_SCOPE):
            continue
        for qualname in mod.functions:
            key = (mod.relpath, qualname)
            s = summaries[key]
            for kind, line in s.observations:
                if s.forced_before(line):
                    continue
                if covered(key, set()):
                    continue
                findings.append(
                    Finding(
                        mod.relpath,
                        line,
                        "forcing-point-missing",
                        f"host observation of container state ({kind}) is not "
                        "dominated by a forcing point (force/sync/_settle) "
                        "locally or at any in-scope call site; a pending lazy "
                        "tape could still rewrite this state",
                        symbol=qualname,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Rule 4: suppression audit
# ---------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(r"#\s*gbsan:\s*ok\(([a-z, -]+)\)(?:\s*--\s*(.*))?")

#: Reasons that explain nothing; directives carrying one do not suppress.
_PLACEHOLDER_REASONS = frozenset(
    {"reason", "todo", "tbd", "xxx", "fixme", "because", "why", "temp", "wip", "ok"}
)
_MIN_REASON_LEN = 8


@dataclass(frozen=True)
class Directive:
    """One ``# gbsan: ok(rules) -- reason`` comment."""

    relpath: str
    line: int
    rules: Tuple[str, ...]
    reason: str

    @property
    def has_real_reason(self) -> bool:
        r = self.reason.strip().rstrip(".").lower()
        return len(r) >= _MIN_REASON_LEN and r not in _PLACEHOLDER_REASONS


def collect_directives(source: str, relpath: str) -> List[Directive]:
    """Directives from COMMENT tokens only — docstring examples don't count."""
    out: List[Directive] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - defensive
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _DIRECTIVE_RE.search(tok.string)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
        out.append(
            Directive(relpath, tok.start[0], rules, (m.group(2) or "").strip())
        )
    return out


def audit_suppressions(
    directives: Sequence[Directive], raw_findings: Sequence[Finding]
) -> List[Finding]:
    """Rule 4: unknown rules, placeholder reasons, stale directives."""
    live: Dict[Tuple[str, int], Set[str]] = {}
    for f in raw_findings:
        live.setdefault((f.path, f.line), set()).add(f.rule)
    findings: List[Finding] = []
    for d in directives:
        for rule in d.rules:
            if rule not in KNOWN_RULES:
                findings.append(
                    Finding(
                        d.relpath,
                        d.line,
                        "suppression-unknown-rule",
                        f"suppression names unknown rule '{rule}'; it can "
                        "never match a finding",
                        symbol=rule,
                    )
                )
        if not d.has_real_reason:
            findings.append(
                Finding(
                    d.relpath,
                    d.line,
                    "suppression-placeholder-reason",
                    f"suppression reason '{d.reason or '<missing>'}' explains "
                    "nothing; state why the flagged pattern is safe here",
                    symbol=",".join(d.rules),
                )
            )
        for rule in d.rules:
            if rule not in KNOWN_RULES:
                continue
            on_lines = live.get((d.relpath, d.line), set()) | live.get(
                (d.relpath, d.line + 1), set()
            )
            if rule not in on_lines:
                findings.append(
                    Finding(
                        d.relpath,
                        d.line,
                        "suppression-stale",
                        f"suppression of '{rule}' no longer matches any "
                        "finding on this or the next line; delete it so it "
                        "cannot mask a future regression",
                        symbol=rule,
                    )
                )
    return findings
