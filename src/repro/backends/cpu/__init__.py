"""Vectorized NumPy CPU backend."""

from .backend import CpuBackend

__all__ = ["CpuBackend"]
