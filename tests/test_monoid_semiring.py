"""Monoids and semirings: identities, terminals, reduction, dispatch keys."""

import numpy as np
import pytest

import repro.core.monoid as M
import repro.core.semiring as S
from repro.core.operators import MINUS, PLUS, binary_op
from repro.types import BOOL, FP32, FP64, INT32, INT64, UINT8


class TestIdentities:
    def test_plus_zero(self):
        assert M.PLUS_MONOID.identity(FP64) == 0.0
        assert M.PLUS_MONOID.identity(INT32) == 0

    def test_times_one(self):
        assert M.TIMES_MONOID.identity(FP64) == 1.0

    def test_min_identity_is_domain_max(self):
        assert M.MIN_MONOID.identity(FP64) == np.inf
        assert M.MIN_MONOID.identity(INT32) == np.iinfo(np.int32).max
        assert M.MIN_MONOID.identity(UINT8) == 255

    def test_max_identity_is_domain_min(self):
        assert M.MAX_MONOID.identity(FP64) == -np.inf
        assert M.MAX_MONOID.identity(INT32) == np.iinfo(np.int32).min
        assert M.MAX_MONOID.identity(UINT8) == 0

    def test_bool_monoids(self):
        assert M.LOR_MONOID.identity(BOOL) == False  # noqa: E712
        assert M.LAND_MONOID.identity(BOOL) == True  # noqa: E712

    def test_min_max_identity_bool(self):
        assert M.MIN_MONOID.identity(BOOL) == True  # noqa: E712
        assert M.MAX_MONOID.identity(BOOL) == False  # noqa: E712


class TestTerminals:
    def test_lor_terminal_true(self):
        assert M.LOR_MONOID.terminal(BOOL) == True  # noqa: E712

    def test_plus_has_no_terminal(self):
        assert M.PLUS_MONOID.terminal(FP64) is None

    def test_times_terminal_zero(self):
        assert M.TIMES_MONOID.terminal(FP64) == 0.0

    def test_min_terminal(self):
        assert M.MIN_MONOID.terminal(INT32) == np.iinfo(np.int32).min


class TestReduceArray:
    def test_plus(self):
        assert M.PLUS_MONOID.reduce_array(np.array([1.0, 2.0, 3.0]), FP64) == 6.0

    def test_empty_reduces_to_identity(self):
        assert M.PLUS_MONOID.reduce_array(np.array([]), FP64) == 0.0
        assert M.MIN_MONOID.reduce_array(np.array([]), FP64) == np.inf

    def test_min_max(self):
        v = np.array([3.0, 1.0, 2.0])
        assert M.MIN_MONOID.reduce_array(v, FP64) == 1.0
        assert M.MAX_MONOID.reduce_array(v, FP64) == 3.0

    def test_lxor_parity(self):
        v = np.array([True, True, True])
        assert M.LXOR_MONOID.reduce_array(v, BOOL) == True  # noqa: E712
        v = np.array([True, True])
        assert M.LXOR_MONOID.reduce_array(v, BOOL) == False  # noqa: E712

    def test_any_takes_first(self):
        assert M.ANY_MONOID.reduce_array(np.array([7.0, 8.0]), FP64) == 7.0

    def test_custom_monoid_fallback_fold(self):
        gcd_op = binary_op("TEST_GCD", np.gcd, commutative=True, associative=True)
        gcd_m = M.Monoid("TEST_GCD_M", gcd_op, lambda t: t.cast(0))
        assert gcd_m.reduce_array(np.array([12, 18, 8]), INT64) == 2


class TestMonoidValidation:
    def test_non_associative_op_rejected(self):
        with pytest.raises(ValueError):
            M.Monoid("BAD", MINUS, lambda t: t.cast(0))

    def test_registry(self):
        assert M.MONOIDS["PLUS_MONOID"] is M.PLUS_MONOID


class TestSemirings:
    def test_zero_comes_from_add_monoid(self):
        assert S.PLUS_TIMES.zero(FP64) == 0.0
        assert S.MIN_PLUS.zero(FP64) == np.inf

    def test_multiply_combine(self):
        assert S.MIN_PLUS.multiply(2.0, 3.0) == 5.0  # mult is PLUS
        assert S.MIN_PLUS.combine(2.0, 3.0) == 2.0  # add is MIN

    def test_result_type_promotes(self):
        # C promotion: int32 values need float64 to be exactly representable.
        assert S.PLUS_TIMES.result_type(INT32, FP32) is FP64
        assert S.PLUS_TIMES.result_type(FP32, FP32) is FP32

    def test_bool_semiring_result_type(self):
        assert S.LOR_LAND.result_type(FP64, FP64) is BOOL

    def test_dispatch_key(self):
        assert S.PLUS_TIMES.key == ("PLUS", "TIMES")
        assert S.MIN_FIRST.key == ("MIN", "FIRST")

    def test_registry(self):
        assert S.SEMIRINGS["MIN_PLUS"] is S.MIN_PLUS

    def test_custom_semiring(self):
        sr = S.make_semiring("TEST_MAX_PLUS2", M.MAX_MONOID, PLUS)
        assert sr.combine(1, 5) == 5
        assert sr.multiply(1, 5) == 6
