"""Synthetic serving traffic: Zipf-skewed sources and tenants at a QPS.

The generator models a population of simulated users (configurable,
defaults above one million) issuing graph queries against a shared graph:

- **arrivals** are Poisson at the configured QPS — exponential
  inter-arrival gaps on the virtual clock;
- **sources** are drawn from a bounded Zipf over the user/vertex
  population, so a hot head of vertices dominates (which is what makes
  within-batch source dedup pay off);
- **tenants** are likewise Zipf-skewed — a few tenants send most of the
  load, the regime where weighted fairness matters;
- the **query mix** is a categorical over query constructors.

Everything is derived from one seeded :class:`numpy.random.Generator`, so
a (spec, seed) pair names a reproducible trace.  Zipf draws use an exact
inverse-CDF over the truncated support (``searchsorted`` on the cumulative
weights) rather than ``Generator.zipf`` — the latter has unbounded
support and would need rejection loops to confine to ``n`` users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .queries import BfsQuery, FeatureQuery, KHopQuery, PprQuery, Query

__all__ = ["TrafficSpec", "Submission", "zipf_choice", "generate_trace"]

DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("khop", 0.65),
    ("bfs", 0.10),
    ("ppr", 0.15),
    ("feature", 0.10),
)


@dataclass(frozen=True)
class Submission:
    """One trace entry, ready for :meth:`GraphService.submit`."""

    arrival_us: float
    tenant: str
    query: Query
    graph: str = "default"
    deadline_us: Optional[float] = None


@dataclass(frozen=True)
class TrafficSpec:
    """Knobs for one synthetic workload.

    ``n_users`` is the simulated user population; each user is pinned to a
    home vertex by a seeded permutation, so source popularity follows the
    user popularity skew even when users outnumber vertices.
    """

    qps: float = 20_000.0
    n_queries: int = 10_000
    n_users: int = 1_200_000
    n_tenants: int = 8
    source_skew: float = 1.1
    tenant_skew: float = 1.0
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    khop_hops: Tuple[int, ...] = (1, 2, 3)
    ppr_damping: float = 0.85
    ppr_iters: int = 5
    deadline_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError(f"qps must be > 0, got {self.qps}")
        if self.n_queries < 1:
            raise ValueError(f"n_queries must be >= 1, got {self.n_queries}")
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        total = sum(w for _, w in self.mix)
        if total <= 0 or any(w < 0 for _, w in self.mix):
            raise ValueError(f"mix weights must be >= 0 and sum > 0: {self.mix}")


def zipf_choice(
    rng: np.random.Generator, n: int, skew: float, size: int
) -> np.ndarray:
    """``size`` draws from a Zipf(``skew``) truncated to ``[0, n)``.

    Exact inverse-CDF sampling: rank ``r`` has weight ``(r+1)**-skew``.
    ``skew=0`` degenerates to uniform.
    """
    if n == 1:
        return np.zeros(size, dtype=np.int64)
    weights = np.arange(1, n + 1, dtype=np.float64) ** -float(skew)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def generate_trace(
    spec: TrafficSpec, n_vertices: int, seed: int = 0
) -> List[Submission]:
    """Materialise one reproducible trace of ``spec.n_queries`` submissions.

    Vertex popularity: user ranks (Zipf over ``n_users``) map onto vertices
    through a seeded permutation mod ``n_vertices``, so the hot user head
    lands on a scattered-but-fixed hot vertex set.
    """
    rng = np.random.default_rng(seed)
    k = spec.n_queries

    gaps = rng.exponential(1e6 / spec.qps, size=k)
    arrivals = np.cumsum(gaps)

    user_ranks = zipf_choice(rng, spec.n_users, spec.source_skew, k)
    vertex_perm = rng.permutation(n_vertices)
    sources = vertex_perm[user_ranks % n_vertices]

    tenant_ranks = zipf_choice(rng, spec.n_tenants, spec.tenant_skew, k)

    kinds = [kind for kind, _ in spec.mix]
    probs = np.array([w for _, w in spec.mix], dtype=np.float64)
    probs /= probs.sum()
    kind_idx = rng.choice(len(kinds), size=k, p=probs)
    hop_idx = rng.integers(0, len(spec.khop_hops), size=k)

    out: List[Submission] = []
    for i in range(k):
        src = int(sources[i])
        kind = kinds[int(kind_idx[i])]
        q: Query
        if kind == "khop":
            q = KHopQuery(src, hops=int(spec.khop_hops[int(hop_idx[i])]))
        elif kind == "bfs":
            q = BfsQuery(src)
        elif kind == "ppr":
            q = PprQuery(src, damping=spec.ppr_damping, iters=spec.ppr_iters)
        elif kind == "feature":
            q = FeatureQuery(src)
        else:
            raise ValueError(f"unknown query kind in mix: {kind!r}")
        arrival = float(arrivals[i])
        deadline = (
            None if spec.deadline_us is None else arrival + spec.deadline_us
        )
        out.append(
            Submission(
                arrival_us=arrival,
                tenant=f"tenant{int(tenant_ranks[i])}",
                query=q,
                deadline_us=deadline,
            )
        )
    return out
