"""Differential fuzzing CLI.

Run from the repo root::

    PYTHONPATH=src python -m repro.testing.fuzz --programs 500 --seed 0

Each iteration generates one random well-typed GraphBLAS program (see
:mod:`repro.testing.programs`) and replays it on every backend spec,
comparing op-by-op against the reference backend.  On a sampled cadence it
additionally runs the metamorphic invariant suite and the profile
counter-conservation suite.  The first failure is greedily shrunk and
written to ``tests/regressions/`` as a standalone pytest repro; the exit
code is the number of failing programs (0 == clean run).

Seeds are stable: program ``i`` of a run with ``--seed S`` is always
``generate_program(S + i)``, so a nightly failure reported as "seed 4217"
replays locally with ``--seed 4217 --programs 1``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from .conservation import run_conservation_suite
from .executor import DEFAULT_SPECS, SMOKE_SPECS, Divergence, run_differential
from .metamorphic import run_metamorphic_suite
from .programs import (
    Program,
    generate_invalid_program,
    generate_mutation_program,
    generate_program,
)
from .shrink import shrink, write_repro
from .streaming import (
    STREAMING_SMOKE_SPECS,
    STREAMING_SPECS,
    run_streaming_differential,
    shrink_streaming,
    write_streaming_repro,
)

__all__ = ["main", "run_fuzz", "run_streaming_fuzz"]

_DEFAULT_REPRO_DIR = Path(__file__).resolve().parents[3] / "tests" / "regressions"


def _shrink_and_report(
    program: Program,
    divergence: Divergence,
    specs,
    repro_dir: Optional[Path],
    max_probes: int,
) -> None:
    def still_fails(cand: Program) -> bool:
        d = run_differential(cand, specs)
        return d is not None

    small = shrink(program, still_fails, max_probes=max_probes)
    final = run_differential(small, specs) or divergence
    print(f"  shrunk: {len(program.ops)} ops -> {len(small.ops)} ops")
    print(f"  minimal program: {small.describe()}")
    print(f"  divergence: {final}")
    if repro_dir is not None:
        path = write_repro(small, final, repro_dir)
        print(f"  repro written: {path}")


def _shrink_and_report_streaming(
    program: Program,
    divergence: Divergence,
    specs,
    repro_dir: Optional[Path],
    max_probes: int,
) -> None:
    def still_fails(cand: Program) -> bool:
        return run_streaming_differential(cand, specs) is not None

    small = shrink_streaming(program, still_fails, max_probes=max_probes)
    final = run_streaming_differential(small, specs) or divergence
    print(f"  shrunk: {len(program.ops)} ops -> {len(small.ops)} ops")
    print(f"  minimal program: {small.describe()}")
    print(f"  divergence: {final}")
    if repro_dir is not None:
        path = write_streaming_repro(small, final, repro_dir)
        print(f"  repro written: {path}")


def run_streaming_fuzz(
    programs: int,
    seed: int,
    specs=STREAMING_SPECS,
    do_shrink: bool = True,
    repro_dir: Optional[Path] = _DEFAULT_REPRO_DIR,
    max_failures: int = 5,
    shrink_probes: int = 300,
    verbose: bool = False,
    sanitize: bool = False,
) -> int:
    """Fuzz ``programs`` graph-mutation programs; returns failure count.

    Each program interleaves edge batches, compactions, and incremental
    analytics queries (:mod:`repro.testing.streaming`); every query is
    checked against the full-recompute oracle within each spec, and all
    per-op snapshots (including the final materialised CSR) are compared
    across specs.  Seed stability matches :func:`run_fuzz`: program ``i``
    is ``generate_mutation_program(seed + i)``.
    """
    san = None
    if sanitize:
        from .. import sanitizer as _sz

        san = _sz.enable()
    failures = 0
    i = 0
    t0 = time.monotonic()
    for i in range(programs):
        s = seed + i
        program = generate_mutation_program(s)
        if san is not None:
            san.reset()
        divergence = run_streaming_differential(program, specs)
        if divergence is not None:
            failures += 1
            print(f"[FAIL] streaming seed {s}: {program.describe()}")
            print(f"  {divergence}")
            if do_shrink:
                _shrink_and_report_streaming(
                    program, divergence, specs, repro_dir, shrink_probes
                )
        elif verbose:
            print(f"[ok] streaming seed {s}: {program.describe()}")
        if san is not None and san.findings:
            failures += 1
            print(f"[FAIL] sanitizer, streaming seed {s}: {program.describe()}")
            print("  " + san.report().replace("\n", "\n  "))
            san.drain()
        if failures >= max_failures:
            print(f"stopping after {failures} failures")
            break
        if not verbose and i and i % 50 == 0:
            dt = time.monotonic() - t0
            print(f"  ... {i}/{programs} programs, {failures} failures, {dt:.1f}s")
    dt = time.monotonic() - t0
    status = "FAILED" if failures else "passed"
    print(
        f"streaming fuzz {status}: {min(i + 1, programs)} programs, seeds "
        f"[{seed}, {seed + i}], {len(specs)} backend specs, "
        f"{failures} failures, {dt:.1f}s"
    )
    return failures


def run_fuzz(
    programs: int,
    seed: int,
    specs=DEFAULT_SPECS,
    metamorphic_every: int = 25,
    conservation_every: int = 25,
    invalid_every: int = 10,
    streaming_every: int = 20,
    do_shrink: bool = True,
    repro_dir: Optional[Path] = _DEFAULT_REPRO_DIR,
    max_failures: int = 5,
    shrink_probes: int = 400,
    verbose: bool = False,
    sanitize: bool = False,
) -> int:
    """Fuzz ``programs`` seeds starting at ``seed``; returns failure count.

    With ``sanitize=True`` every program also runs under gbsan
    (:mod:`repro.sanitizer`): any race/residency/lifetime/replay finding
    counts as a failure even when the numeric results agree — the fuzzer
    doubles as a sanitizer false-positive hunt and as a net for bugs whose
    symptom is mis-accounting rather than wrong output.
    """
    san = None
    if sanitize:
        from .. import sanitizer as _sz

        san = _sz.enable()
    failures = 0
    t0 = time.monotonic()
    for i in range(programs):
        s = seed + i
        program = generate_program(s)
        if san is not None:
            san.reset()  # fresh HB graph / shadows per program
        divergence = run_differential(program, specs)
        if divergence is not None:
            failures += 1
            print(f"[FAIL] seed {s}: {program.describe()}")
            print(f"  {divergence}")
            if do_shrink:
                _shrink_and_report(program, divergence, specs, repro_dir, shrink_probes)
        elif verbose:
            print(f"[ok] seed {s}: {program.describe()}")
        if san is not None and san.findings:
            failures += 1
            print(f"[FAIL] sanitizer, seed {s}: {program.describe()}")
            print("  " + san.report().replace("\n", "\n  "))
            san.drain()

        if invalid_every and i % invalid_every == 0:
            bad = generate_invalid_program(s)
            d = run_differential(bad, specs)
            if d is not None:
                failures += 1
                print(f"[FAIL] invalid-program seed {s}: {bad.describe()}")
                print(f"  {d}")

        if metamorphic_every and i % metamorphic_every == 0:
            for msg in run_metamorphic_suite(s):
                failures += 1
                print(f"[FAIL] metamorphic, seed {s}: {msg}")
        if conservation_every and i % conservation_every == 0:
            for msg in run_conservation_suite(program):
                failures += 1
                print(f"[FAIL] conservation, seed {s}: {msg}")
        if streaming_every and i % streaming_every == 0:
            sprog = generate_mutation_program(s)
            d = run_streaming_differential(sprog, STREAMING_SMOKE_SPECS)
            if d is not None:
                failures += 1
                print(f"[FAIL] streaming, seed {s}: {sprog.describe()}")
                print(f"  {d}")
                if do_shrink:
                    _shrink_and_report_streaming(
                        sprog, d, STREAMING_SMOKE_SPECS, repro_dir, shrink_probes
                    )

        if failures >= max_failures:
            print(f"stopping after {failures} failures")
            break
        if not verbose and i and i % 100 == 0:
            dt = time.monotonic() - t0
            print(f"  ... {i}/{programs} programs, {failures} failures, {dt:.1f}s")
    dt = time.monotonic() - t0
    status = "FAILED" if failures else "passed"
    print(
        f"fuzz {status}: {min(i + 1, programs)} programs, seeds "
        f"[{seed}, {seed + i}], {len(specs)} backend specs, "
        f"{failures} failures, {dt:.1f}s"
    )
    return failures


def _load_program(path: Path) -> Program:
    """Load a program from JSON, or from a generated repro's PROGRAM dict."""
    text = path.read_text()
    if path.suffix == ".py":
        ns: dict = {}
        exec(compile(text, str(path), "exec"), {"__name__": "_repro"}, ns)
        return Program.from_dict(ns["PROGRAM"])
    return Program.from_dict(json.loads(text))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--programs", type=int, default=500,
                    help="number of programs to generate (default 500)")
    ap.add_argument("--seed", type=int, default=0,
                    help="first program seed; program i uses seed+i")
    ap.add_argument("--smoke", action="store_true",
                    help="only reference/cpu/cuda_sim (skip multi_sim sweep)")
    ap.add_argument("--backends", type=str, default=None,
                    help="comma-separated backend specs overriding the default set")
    ap.add_argument("--metamorphic-every", type=int, default=25, metavar="N",
                    help="run the metamorphic suite every N programs (0 = never)")
    ap.add_argument("--conservation-every", type=int, default=25, metavar="N",
                    help="run the conservation suite every N programs (0 = never)")
    ap.add_argument("--invalid-every", type=int, default=10, metavar="N",
                    help="run an invalid-program (error-path) differential "
                         "every N programs (0 = never)")
    ap.add_argument("--streaming", action="store_true",
                    help="fuzz graph-mutation programs only (DynamicGraph + "
                         "incremental views vs the full-recompute oracle)")
    ap.add_argument("--streaming-every", type=int, default=20, metavar="N",
                    help="in the default mode, run one mutation-program "
                         "differential every N programs (0 = never)")
    ap.add_argument("--no-shrink", action="store_true",
                    help="report failures without shrinking")
    ap.add_argument("--repro-dir", type=Path, default=_DEFAULT_REPRO_DIR,
                    help="where shrunk pytest repros are written")
    ap.add_argument("--no-repro", action="store_true",
                    help="shrink but do not write repro files")
    ap.add_argument("--max-failures", type=int, default=5,
                    help="stop after this many failing programs")
    ap.add_argument("--shrink-probes", type=int, default=400,
                    help="probe budget for the greedy shrinker")
    ap.add_argument("--replay", type=Path, default=None, metavar="FILE",
                    help="replay one saved program (.json, or a generated "
                         "tests/regressions/*.py repro) instead of fuzzing")
    ap.add_argument("--sanitize", action="store_true",
                    help="run every program under gbsan (repro.sanitizer); "
                         "any finding counts as a failure")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.backends:
        specs = tuple(s.strip() for s in args.backends.split(",") if s.strip())
    elif args.streaming:
        specs = STREAMING_SMOKE_SPECS if args.smoke else STREAMING_SPECS
    else:
        specs = SMOKE_SPECS if args.smoke else DEFAULT_SPECS

    if args.replay is not None:
        program = _load_program(args.replay)
        print(f"replaying {args.replay}: {program.describe()}")
        if args.streaming:
            divergence = run_streaming_differential(program, specs)
        else:
            divergence = run_differential(program, specs)
        if divergence is None:
            print("replay passed on all backends")
            return 0
        print(f"[FAIL] {divergence}")
        return 1

    if args.streaming:
        return run_streaming_fuzz(
            programs=args.programs,
            seed=args.seed,
            specs=specs,
            do_shrink=not args.no_shrink,
            repro_dir=None if args.no_repro else args.repro_dir,
            max_failures=args.max_failures,
            shrink_probes=args.shrink_probes,
            verbose=args.verbose,
            sanitize=args.sanitize,
        )

    return run_fuzz(
        programs=args.programs,
        seed=args.seed,
        specs=specs,
        metamorphic_every=args.metamorphic_every,
        conservation_every=args.conservation_every,
        invalid_every=args.invalid_every,
        streaming_every=args.streaming_every,
        do_shrink=not args.no_shrink,
        repro_dir=None if args.no_repro else args.repro_dir,
        max_failures=args.max_failures,
        shrink_probes=args.shrink_probes,
        verbose=args.verbose,
        sanitize=args.sanitize,
    )


if __name__ == "__main__":
    sys.exit(main())
