"""Block-row partitioned containers.

A P-way partition of an n-row matrix is described by a *splitter* array of
P+1 row boundaries ``0 = s_0 ≤ s_1 ≤ … ≤ s_P = n``; shard p owns rows
``[s_p, s_{p+1})``.  Two splitter policies:

- **equal_rows** — boundaries at multiples of ``n/P``.  Oblivious to the
  graph; pathological for power-law degree distributions, where one shard
  can own most of the edges.
- **degree_balanced** — boundaries chosen so each shard owns ~``nnz/P``
  stored entries (a scan over ``indptr``).  The 1-D analogue of
  GraphBLAST/Gunrock's edge-balanced partitioning.

Shards are ordinary :class:`~repro.containers.csr.CSRMatrix` /
:class:`~repro.containers.sparsevec.SparseVector` containers (NumPy slices
share the parent's storage, so partitioning is O(P) views, not a copy),
which is what lets the per-device scheduler reuse the single-device kernel
layer unchanged.  ``P == 1`` partitions alias the source container itself,
so the degenerate cluster is bit- and accounting-identical to the
single-device backend.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..containers.csr import CSRMatrix
from ..containers.sparsevec import SparseVector
from ..exceptions import InvalidValueError

__all__ = [
    "equal_rows_splitters",
    "degree_balanced_splitters",
    "make_splitters",
    "concat_row_blocks",
    "PartitionedCSR",
    "PartitionedVector",
]

SPLITTERS = ("equal_rows", "degree_balanced")


def equal_rows_splitters(nrows: int, nparts: int) -> np.ndarray:
    """P+1 boundaries cutting ``nrows`` into near-equal contiguous blocks."""
    if nparts < 1:
        raise InvalidValueError(f"nparts must be >= 1, got {nparts}")
    return np.linspace(0, nrows, nparts + 1).astype(np.int64)


def degree_balanced_splitters(indptr: np.ndarray, nparts: int) -> np.ndarray:
    """P+1 boundaries giving each block ~``nnz/P`` stored entries.

    Boundary p is the first row whose prefix-nnz reaches ``p·nnz/P`` —
    found with one ``searchsorted`` over the (already monotone) ``indptr``.
    Degenerates to equal_rows when every row has the same degree, and to
    possibly-empty blocks when single rows exceed the quota (a hub row
    cannot be split below row granularity in a 1-D partition).
    """
    if nparts < 1:
        raise InvalidValueError(f"nparts must be >= 1, got {nparts}")
    nrows = int(indptr.size - 1)
    nnz = int(indptr[-1])
    if nnz == 0:
        return equal_rows_splitters(nrows, nparts)
    targets = (np.arange(1, nparts, dtype=np.float64) * nnz) / nparts
    cuts = np.searchsorted(indptr, targets, side="left").astype(np.int64)
    out = np.empty(nparts + 1, dtype=np.int64)
    out[0] = 0
    out[1:-1] = np.minimum(cuts, nrows)
    out[-1] = nrows
    # Monotone even when several targets land inside one hub row.
    np.maximum.accumulate(out, out=out)
    return out


def make_splitters(matrix: CSRMatrix, nparts: int, policy: str) -> np.ndarray:
    """Resolve a splitter policy name against a concrete matrix."""
    if policy == "equal_rows":
        return equal_rows_splitters(matrix.nrows, nparts)
    if policy == "degree_balanced":
        return degree_balanced_splitters(matrix.indptr, nparts)
    raise InvalidValueError(f"unknown splitter {policy!r}; known: {SPLITTERS}")


def _slice_rows(a: CSRMatrix, lo: int, hi: int) -> CSRMatrix:
    """Rows [lo, hi) of ``a`` as a view-backed CSR (columns stay global)."""
    s, e = int(a.indptr[lo]), int(a.indptr[hi])
    return CSRMatrix(
        hi - lo,
        a.ncols,
        a.indptr[lo : hi + 1] - s,
        a.indices[s:e],
        a.values[s:e],
        a.type,
    )


def concat_row_blocks(blocks: List[CSRMatrix], ncols: int, typ) -> CSRMatrix:
    """Stack row blocks vertically into one CSR.

    The inverse of slicing a matrix into contiguous row ranges: block k's
    rows become global rows ``[Σ_{i<k} nrows_i, …)``.  Entries keep their
    within-row order, so stacking the row blocks of a sharded product is
    bit-identical to computing the product unsharded.
    """
    if len(blocks) == 1:
        return blocks[0]
    nrows = sum(b.nrows for b in blocks)
    indptr = np.empty(nrows + 1, dtype=np.int64)
    indptr[0] = 0
    row = 0
    nnz = 0
    chunks_i, chunks_v = [], []
    for b in blocks:
        indptr[row + 1 : row + b.nrows + 1] = nnz + b.indptr[1:]
        row += b.nrows
        nnz += b.nvals
        if b.nvals:
            chunks_i.append(b.indices)
            chunks_v.append(b.values)
    indices = np.concatenate(chunks_i) if chunks_i else np.empty(0, np.int64)
    values = np.concatenate(chunks_v) if chunks_v else np.empty(0, typ.dtype)
    return CSRMatrix(nrows, ncols, indptr, indices, values, typ)


class PartitionedCSR:
    """A CSR matrix sharded into P contiguous block-rows.

    Each shard keeps the full column dimension, so shard-local SpMV over a
    replicated input produces exactly the owner's slice of the global
    output — the bit-exact 1-D decomposition.
    """

    __slots__ = ("source", "splitters", "shards", "splitter_policy", "source_version")

    def __init__(self, matrix: CSRMatrix, nparts: int, splitter: str = "equal_rows"):
        self.source = matrix
        self.source_version = matrix.version
        self.splitter_policy = splitter
        self.splitters = make_splitters(matrix, nparts, splitter)
        if nparts == 1:
            # The degenerate partition IS the matrix: preserving container
            # identity preserves residency and aux caches, making the P=1
            # cluster indistinguishable from the single-device backend.
            self.shards: List[CSRMatrix] = [matrix]
        else:
            self.shards = [
                _slice_rows(matrix, int(lo), int(hi))
                for lo, hi in zip(self.splitters[:-1], self.splitters[1:])
            ]

    @property
    def nparts(self) -> int:
        return len(self.shards)

    @property
    def nrows(self) -> int:
        return self.source.nrows

    @property
    def ncols(self) -> int:
        return self.source.ncols

    def owner_of(self, row: int) -> int:
        """Index of the shard owning ``row``."""
        return int(np.searchsorted(self.splitters, row, side="right") - 1)

    def shard_range(self, p: int):
        return int(self.splitters[p]), int(self.splitters[p + 1])

    def reassemble(self) -> CSRMatrix:
        """Concatenate the shards back into one global CSR (for testing)."""
        if self.nparts == 1:
            return self.shards[0]
        indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        pos = 0
        chunks_i, chunks_v = [], []
        for (lo, hi), sh in zip(
            zip(self.splitters[:-1], self.splitters[1:]), self.shards
        ):
            indptr[int(lo) + 1 : int(hi) + 1] = pos + sh.indptr[1:]
            pos += sh.nvals
            chunks_i.append(sh.indices)
            chunks_v.append(sh.values)
        # Rows beyond the last nonempty shard keep the running total.
        np.maximum.accumulate(indptr, out=indptr)
        indices = np.concatenate(chunks_i) if chunks_i else np.empty(0, np.int64)
        values = (
            np.concatenate(chunks_v)
            if chunks_v
            else np.empty(0, self.source.type.dtype)
        )
        return CSRMatrix(self.nrows, self.ncols, indptr, indices, values, self.source.type)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedCSR({self.nrows}x{self.ncols}, P={self.nparts}, "
            f"{self.splitter_policy})"
        )


class PartitionedVector:
    """A sparse vector split into P owned ranges by the same splitters.

    ``shard(p)`` is the owner's local view (indices rebased to the shard's
    row range); ``replicated()`` is the full vector, the view a device
    holds after an allgather.  Shards are computed lazily and cached.
    """

    __slots__ = ("source", "splitters", "_shards", "source_version")

    def __init__(self, vector: SparseVector, splitters: np.ndarray):
        self.source = vector
        self.source_version = vector.version
        self.splitters = np.asarray(splitters, dtype=np.int64)
        if self.splitters[-1] != vector.size:
            raise InvalidValueError(
                f"splitters cover [0, {self.splitters[-1]}), vector size {vector.size}"
            )
        self._shards: List[Optional[SparseVector]] = [None] * (len(splitters) - 1)

    @property
    def nparts(self) -> int:
        return len(self._shards)

    def shard(self, p: int) -> SparseVector:
        """Owned-range view of shard ``p`` with *local* indices."""
        hit = self._shards[p]
        if hit is not None:
            return hit
        lo, hi = int(self.splitters[p]), int(self.splitters[p + 1])
        if self.nparts == 1:
            sh = self.source
        else:
            u = self.source
            s, e = np.searchsorted(u.indices, (lo, hi))
            sh = SparseVector(hi - lo, u.indices[s:e] - lo, u.values[s:e], u.type)
        self._shards[p] = sh
        return sh

    def replicated(self) -> SparseVector:
        """The full vector (what every device holds after an allgather)."""
        return self.source

    def shard_nbytes(self, p: int) -> int:
        return self.shard(p).nbytes

    @staticmethod
    def reassemble(
        shards: List[SparseVector], splitters: np.ndarray, typ=None
    ) -> SparseVector:
        """Concatenate local shards back into one global vector.

        Within-shard indices are sorted and shards are ordered by range, so
        offsetting and concatenating preserves the canonical form.
        """
        size = int(splitters[-1])
        if len(shards) == 1:
            sh = shards[0]
            return SparseVector(size, sh.indices, sh.values, typ or sh.type)
        idx = [sh.indices + int(lo) for sh, lo in zip(shards, splitters[:-1])]
        vals = [sh.values for sh in shards]
        typ = typ or shards[0].type
        return SparseVector(
            size,
            np.concatenate(idx) if idx else np.empty(0, np.int64),
            np.concatenate(vals) if vals else np.empty(0, typ.dtype),
            typ,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionedVector(size={self.source.size}, P={self.nparts})"
