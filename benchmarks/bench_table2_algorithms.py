"""Table 2 — graph algorithm runtimes per backend per graph.

Reconstructed experiment: the six algorithms a GABB'16 evaluation reports
(BFS, SSSP, PageRank, triangle counting, connected components, MIS), written
once against the frontend, run on every backend over the workload suite.
Shape claim: identical results everywhere; cpu and cuda_sim beat the
sequential reference by 1–3 orders of magnitude at these scales.
"""

from __future__ import annotations

import pytest

import repro as gb
from repro.bench.harness import time_operation
from repro.bench.tables import check_ordering, format_table
from repro.bench.workloads import get_workload

from conftest import bench_backend, save_table

BACKENDS = ["reference", "cpu", "cuda_sim"]
GRAPHS = ["rmat_s10", "er_4k", "grid_64"]


def algorithms():
    return [
        ("BFS", lambda g: gb.algorithms.bfs_levels(g, 0)),
        ("SSSP", lambda g: gb.algorithms.sssp(g, 0)),
        ("PageRank", lambda g: gb.algorithms.pagerank(g, max_iter=20)),
        ("TriangleCount", lambda g: gb.algorithms.triangle_count(g)),
        ("ConnComp", lambda g: gb.algorithms.connected_components(g)),
        ("MIS", lambda g: gb.algorithms.mis(g, seed=1)),
    ]


_ALGOS = algorithms()

# The reference backend is measured on the smallest workload only — a
# GABB-scale sequential baseline; larger graphs extrapolate by the same
# factor (noted in EXPERIMENTS.md).
_REFERENCE_GRAPHS = {"rmat_s10", "grid_64"}


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algo", [name for name, _ in _ALGOS])
def test_table2_algorithm(benchmark, graph, backend, algo):
    if backend == "reference" and graph not in _REFERENCE_GRAPHS:
        pytest.skip("sequential baseline measured on small workloads only")
    g = get_workload(graph)
    fn = dict(_ALGOS)[algo]
    rounds = 1 if backend == "reference" else 2
    bench_backend(benchmark, backend, lambda: fn(g), rounds=rounds)


def test_table2_render(benchmark):
    def build():
        rows = []
        problems = []
        for graph in GRAPHS:
            g = get_workload(graph)
            for name, fn in _ALGOS:
                times = {}
                for b in BACKENDS:
                    if b == "reference" and graph not in _REFERENCE_GRAPHS:
                        times[b] = float("nan")
                        continue
                    times[b] = time_operation(
                        b, lambda: fn(g), repeat=1 if b == "reference" else 2
                    ).seconds
                rows.append(
                    [graph, name, times["reference"], times["cpu"], times["cuda_sim"]]
                )
                if graph in _REFERENCE_GRAPHS:
                    problems.extend(
                        check_ordering(
                            times, ["cpu", "cuda_sim"], "reference", min_factor=2.0
                        )
                    )
        table = format_table(
            "Table 2 — algorithm runtimes (seconds; cuda_sim = modeled device time)",
            ["graph", "algorithm", "reference", "cpu", "cuda_sim"],
            rows,
        )
        save_table("table2_algorithms", table)
        assert not problems, "\n".join(problems)
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_table2_results_identical_across_backends(benchmark):
    """The companion claim: every backend returns the same answer."""

    def verify():
        g = get_workload("rmat_s10")
        for name, fn in _ALGOS:
            if name == "PageRank":  # float rounding differs; checked in tests
                continue
            results = {}
            for b in BACKENDS:
                with gb.use_backend(b):
                    results[b] = fn(g)
            assert results["cpu"] == results["reference"], name
            assert results["cuda_sim"] == results["reference"], name
        return True

    benchmark.pedantic(verify, rounds=1, iterations=1)
