"""Sparse storage containers shared by all backends.

- :class:`COO` — build/staging triplets;
- :class:`CSRMatrix` — canonical row-compressed compute format;
- :class:`CSCMatrix` — column view for pull-direction kernels;
- :class:`SparseVector` — sparse frontiers and results;
- :class:`BitmapVector` — dense-with-presence-mask state vectors;
- :mod:`~repro.containers.convert` — conversions between them.
"""

from .bitmap import BitmapVector
from .coo import COO, dedupe_triplets
from .csc import CSCMatrix
from .csr import CSRMatrix
from .sparsevec import SparseVector
from . import convert

__all__ = [
    "BitmapVector",
    "COO",
    "CSCMatrix",
    "CSRMatrix",
    "SparseVector",
    "convert",
    "dedupe_triplets",
]
