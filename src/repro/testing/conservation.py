"""Counter-conservation invariants on cuda_sim / multi_sim profiles.

The simulator's performance layers (transfer elision, kernel graphs,
P-way sharding) must change *when* work is charged, never *how much* total
logical work exists.  Three conservation laws capture that:

- **transfer conservation** — bytes actually copied H2D plus bytes elided
  is constant whether elision is on or off: elision may only move traffic
  between the two counters, never create or destroy it;
- **flop conservation** — the sum of kernel flops across all P devices of
  a sharded pull product equals the single-device flop count: block-row
  sharding repartitions rows, it does not change per-row work;
- **replay conservation** — expanding ``graph_replay[...]`` records back
  to their member kernels reproduces the per-kernel launch counts of a
  graphs-off run, and the expanded view's total time still equals
  ``kernel_time_us`` (attribution is lossless).

Each check returns ``None`` on success or a failure description.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .. import algorithms
from ..backends.dispatch import get_backend, use_backend
from ..core import operations as ops
from ..core.semiring import MIN_PLUS, PLUS_TIMES
from ..core.vector import Vector
from ..gpu import reuse
from ..gpu.device import get_device, reset_device
from ..types import FP64
from .executor import execute
from .programs import Program, build_env

__all__ = [
    "check_transfer_conservation",
    "check_flop_conservation",
    "check_replay_conservation",
    "run_conservation_suite",
]


def _fresh_cuda_sim():
    be = get_backend("cuda_sim")
    be.evict_all()
    reset_device()
    return be


def check_transfer_conservation(program: Program) -> Optional[str]:
    """Every byte elision saves must be accounted for, and none invented.

    Three laws tie the two transfer counters across elision modes:

    - with elision off, the elided counter must stay exactly zero;
    - elision may only *remove* uploads: ``h2d(on) <= h2d(off)``;
    - every removed byte is recorded: ``h2d(off) - h2d(on) <=
      h2d_elided(on)``.  (The elided counter charges per consumption of a
      device-resident container, so it upper-bounds the savings — equality
      holds exactly when each elided container is consumed once.)
    """
    totals = []
    for elide in (True, False):
        be = _fresh_cuda_sim()
        reuse.configure(elision=elide)
        try:
            execute(program, "cuda_sim")
        finally:
            reuse.configure(elision=True)
        stats = get_device().allocator.stats
        totals.append((float(stats.h2d_bytes), float(stats.h2d_elided_bytes)))
        be.evict_all()
    (on_h2d, on_elided), (off_h2d, off_elided) = totals
    if off_elided != 0.0:
        return f"elision disabled but {off_elided:g} bytes recorded as elided"
    saved = off_h2d - on_h2d
    if saved < 0:
        return (
            f"elision *added* transfer traffic: {on_h2d:g} B uploaded with "
            f"elision on vs {off_h2d:g} B with it off"
        )
    if saved > on_elided:
        return (
            f"unaccounted transfer savings: {saved:g} B disappeared but only "
            f"{on_elided:g} B recorded as elided"
        )
    return None


def _kernel_flops(profiler) -> float:
    return sum(r.flops for r in profiler.records if r.kind == "kernel")


def check_flop_conservation(
    program: Program, nparts: int = 4, splitter: str = "degree_balanced"
) -> Optional[str]:
    """P-shard flop sum equals single-device flops for a pull product.

    The probe runs one forced-pull ``PLUS_TIMES`` and one forced-pull
    ``MIN_PLUS`` mxv over the program's graph and dense-ish vector: pull
    decomposes by output row, so total row work is invariant under any
    block-row split.
    """
    env = build_env(program)
    graph, u = env.matrices[0], env.vectors[0]

    def probe():
        w = ops.mxv(Vector.sparse(FP64, graph.nrows), graph, u, PLUS_TIMES, direction="pull")
        w2 = ops.mxv(Vector.sparse(FP64, graph.nrows), graph, u, MIN_PLUS, direction="pull")
        return w, w2

    _fresh_cuda_sim()
    with use_backend("cuda_sim"):
        # Bind the probe outputs: a discarded result is a *dead*
        # materialization under the lazy optimizer and would (correctly)
        # never launch, which is not what a flop-counting probe wants.
        keep = probe()
    single = _kernel_flops(get_device().profiler)

    ms = get_backend("multi_sim").configure(nparts=nparts, splitter=splitter)
    ms.reset()
    with use_backend(ms):
        keep = probe()
    sharded = sum(_kernel_flops(d.profiler) for d in ms.cluster.devices)
    del keep

    if not np.isclose(single, sharded, rtol=1e-9):
        return (
            f"flops not conserved across P={nparts} ({splitter}): "
            f"single-device {single:g} vs shard sum {sharded:g}"
        )
    return None


def _counts_by_kernel(profiler, expand: bool) -> Dict[str, int]:
    agg = profiler.by_kernel(expand_replays=expand)
    return {
        name: int(row["count"])
        for name, row in agg.items()
        if not name.startswith("graph_replay[")
    }


def check_replay_conservation(program: Program, source: int = 0) -> Optional[str]:
    """Replay-expanded launch counts match a kernel-graphs-off run of BFS.

    Also checks the documented lossless-attribution property: the expanded
    per-kernel view sums to exactly ``kernel_time_us``.
    """
    env = build_env(program)
    graph = env.matrices[0]

    def run_bfs():
        return algorithms.bfs_levels(graph, source % graph.nrows)

    _fresh_cuda_sim()
    with use_backend("cuda_sim"):
        run_bfs()
    prof_on = get_device().profiler
    expanded = _counts_by_kernel(prof_on, expand=True)
    exp_time = sum(r["time_us"] for r in prof_on.by_kernel(expand_replays=True).values())
    if not np.isclose(exp_time, prof_on.kernel_time_us, rtol=1e-9):
        return (
            f"replay expansion lost time: expanded sum {exp_time:g}us vs "
            f"kernel_time_us {prof_on.kernel_time_us:g}us"
        )

    be = _fresh_cuda_sim()
    reuse.configure(graphs=False)
    try:
        with use_backend("cuda_sim"):
            run_bfs()
    finally:
        reuse.configure(graphs=True)
    plain = _counts_by_kernel(get_device().profiler, expand=False)
    be.evict_all()

    if expanded != plain:
        diff = {
            k: (expanded.get(k, 0), plain.get(k, 0))
            for k in sorted(set(expanded) | set(plain))
            if expanded.get(k, 0) != plain.get(k, 0)
        }
        return f"replay-expanded launch counts disagree with graphs-off run: {diff}"
    return None


def run_conservation_suite(program: Program) -> List[str]:
    """All three conservation laws for one program; returns failures."""
    failures: List[str] = []
    msg = check_transfer_conservation(program)
    if msg:
        failures.append(f"[transfer] {program.describe()}: {msg}")
    for nparts in (2, 4):
        for splitter in ("equal_rows", "degree_balanced"):
            msg = check_flop_conservation(program, nparts, splitter)
            if msg:
                failures.append(f"[flops] {program.describe()}: {msg}")
    msg = check_replay_conservation(program)
    if msg:
        failures.append(f"[replay] {program.describe()}: {msg}")
    return failures
