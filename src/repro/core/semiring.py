"""GraphBLAS semirings: an additive monoid paired with a multiplicative op.

Semirings are the heart of the GraphBLAS abstraction: ``mxm``/``mxv`` over
(PLUS, TIMES) is linear algebra, over (MIN, PLUS) it is shortest paths, over
(LOR, LAND) it is reachability.  GBTL-CUDA's algorithms are all expressed as
semiring products; this module provides the standard semirings plus a factory
for building custom ones.

Backends may provide *fast paths* keyed on ``(add.name, mult.name)`` — e.g.
the CPU backend lowers PLUS_TIMES SpMV onto pure NumPy and the GPU simulator
picks specialized kernels — falling back to the generic path otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ..types import GrBType, promote
from .monoid import (
    ANY_MONOID,
    LAND_MONOID,
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    Monoid,
    PLUS_MONOID,
    TIMES_MONOID,
)
from .operators import (
    BinaryOp,
    FIRST,
    LAND,
    LOR,
    MAX,
    MIN,
    PAIR,
    PLUS,
    SECOND,
    TIMES,
)

__all__ = [
    "Semiring",
    "make_semiring",
    "SEMIRINGS",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_PLUS",
    "MIN_TIMES",
    "MIN_MAX",
    "MAX_MIN",
    "MAX_TIMES",
    "LOR_LAND",
    "LAND_LOR",
    "PLUS_MIN",
    "MIN_FIRST",
    "MIN_SECOND",
    "MAX_FIRST",
    "MAX_SECOND",
    "ANY_PAIR",
    "ANY_SECOND",
    "ANY_FIRST",
    "PLUS_PAIR",
    "PLUS_FIRST",
    "PLUS_SECOND",
]


@dataclass(frozen=True)
class Semiring:
    """``(add, mult)`` pair where ``add`` is a monoid.

    ``zero`` (the add identity) annihilates under the usual interpretation;
    sparse kernels exploit that implicit entries are ``zero`` and never
    materialise them.
    """

    name: str
    add: Monoid = field(compare=False)
    mult: BinaryOp = field(compare=False)

    def zero(self, t: GrBType) -> Any:
        """The additive identity in domain ``t``."""
        return self.add.identity(t)

    def multiply(self, a: Any, b: Any) -> Any:
        return self.mult(a, b)

    def combine(self, a: Any, b: Any) -> Any:
        return self.add(a, b)

    def result_type(self, a: GrBType, b: GrBType) -> GrBType:
        """Output domain for multiplying domains ``a`` and ``b``."""
        t = promote(a, b)
        t = self.mult.result_type(t)
        return self.add.result_type(t)

    @property
    def key(self) -> Tuple[str, str]:
        """Fast-path dispatch key used by backends."""
        return (self.add.op.name, self.mult.name)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Semiring({self.name})"


SEMIRINGS: Dict[str, Semiring] = {}


def make_semiring(name: str, add: Monoid, mult: BinaryOp) -> Semiring:
    """Create and register a :class:`Semiring`."""
    s = Semiring(name, add, mult)
    SEMIRINGS[name] = s
    return s


# The classic arithmetic semiring.
PLUS_TIMES = make_semiring("PLUS_TIMES", PLUS_MONOID, TIMES)
# Tropical semirings — SSSP and friends.
MIN_PLUS = make_semiring("MIN_PLUS", MIN_MONOID, PLUS)
MAX_PLUS = make_semiring("MAX_PLUS", MAX_MONOID, PLUS)
MIN_TIMES = make_semiring("MIN_TIMES", MIN_MONOID, TIMES)
MIN_MAX = make_semiring("MIN_MAX", MIN_MONOID, MAX)
MAX_MIN = make_semiring("MAX_MIN", MAX_MONOID, MIN)
MAX_TIMES = make_semiring("MAX_TIMES", MAX_MONOID, TIMES)
# Boolean semiring — BFS/reachability.
LOR_LAND = make_semiring("LOR_LAND", LOR_MONOID, LAND)
LAND_LOR = make_semiring("LAND_LOR", LAND_MONOID, LOR)
PLUS_MIN = make_semiring("PLUS_MIN", PLUS_MONOID, MIN)
# Select semirings — parent BFS, connected components.
MIN_FIRST = make_semiring("MIN_FIRST", MIN_MONOID, FIRST)
MIN_SECOND = make_semiring("MIN_SECOND", MIN_MONOID, SECOND)
MAX_FIRST = make_semiring("MAX_FIRST", MAX_MONOID, FIRST)
MAX_SECOND = make_semiring("MAX_SECOND", MAX_MONOID, SECOND)
ANY_PAIR = make_semiring("ANY_PAIR", ANY_MONOID, PAIR)
ANY_SECOND = make_semiring("ANY_SECOND", ANY_MONOID, SECOND)
ANY_FIRST = make_semiring("ANY_FIRST", ANY_MONOID, FIRST)
# Structure-counting semirings — triangle counting uses PLUS_PAIR.
PLUS_PAIR = make_semiring("PLUS_PAIR", PLUS_MONOID, PAIR)
PLUS_FIRST = make_semiring("PLUS_FIRST", PLUS_MONOID, FIRST)
PLUS_SECOND = make_semiring("PLUS_SECOND", PLUS_MONOID, SECOND)
