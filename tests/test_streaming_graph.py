"""DynamicGraph unit tests: overlay lifecycle, compaction, policy, charging."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms.bfs import bfs_levels
from repro.core.matrix import Matrix
from repro.exceptions import IndexOutOfBoundsError, InvalidValueError
from repro.streaming import CompactionPolicy, DynamicGraph, EdgeBatch
from repro.types import FP64


def _chain(n: int) -> Matrix:
    rows = np.arange(n - 1, dtype=np.int64)
    return Matrix.from_lists(rows, rows + 1, np.ones(n - 1), n, n, FP64)


# ---------------------------------------------------------------------------
# EdgeBatch
# ---------------------------------------------------------------------------


class TestEdgeBatch:
    def test_ragged_arrays_rejected(self):
        with pytest.raises(InvalidValueError):
            EdgeBatch(
                np.array([0, 1]), np.array([1]), np.array([1.0]),
                np.array([True]),
            )

    def test_out_of_bounds_rejected(self):
        g = DynamicGraph(_chain(4))
        with pytest.raises(IndexOutOfBoundsError):
            g.insert_edges([0], [4], [1.0])
        with pytest.raises(IndexOutOfBoundsError):
            g.insert_edges([-1], [0], [1.0])

    def test_normalized_keeps_last_per_edge(self):
        b = EdgeBatch.from_ops(
            [
                ("insert", 0, 1, 5.0),
                ("delete", 0, 1, 0.0),
                ("insert", 0, 1, 7.0),
            ]
        )
        nb = b.normalized()
        assert len(nb) == 1
        assert nb.is_insert[0] and nb.vals[0] == 7.0

    def test_dict_roundtrip(self):
        b = EdgeBatch.inserts([0, 2], [1, 3], [1.5, 2.5])
        rt = EdgeBatch.from_dict(b.to_dict())
        np.testing.assert_array_equal(rt.rows, b.rows)
        np.testing.assert_array_equal(rt.cols, b.cols)
        np.testing.assert_array_equal(rt.vals, b.vals)
        np.testing.assert_array_equal(rt.is_insert, b.is_insert)


# ---------------------------------------------------------------------------
# Overlay lifecycle (host backend)
# ---------------------------------------------------------------------------


class TestDynamicGraphHost:
    def test_requires_square(self):
        m = Matrix.from_lists([0], [1], [1.0], 2, 3, FP64)
        with pytest.raises(InvalidValueError):
            DynamicGraph(m)

    def test_insert_visible_before_compaction(self):
        g = DynamicGraph(_chain(5))
        assert not g.has_edge(0, 3)
        g.insert_edges([0], [3], [9.0])
        assert g.pending_ops == 1
        assert g.has_edge(0, 3) and g.edge_value(0, 3) == 9.0
        assert g.nvals() == 5
        assert g.base_nvals == 4  # CSR untouched until compaction

    def test_delete_visible_before_compaction(self):
        g = DynamicGraph(_chain(5))
        g.delete_edges([1], [2])
        assert not g.has_edge(1, 2)
        assert g.edge_value(1, 2) is None
        assert g.nvals() == 3

    def test_compact_bumps_version_once(self):
        g = DynamicGraph(_chain(5))
        c = g._matrix.container
        v0 = c.version
        g.insert_edges([0, 2], [2, 0], [1.0, 1.0])
        assert c.version == v0  # overlay writes don't touch the container
        assert g.compact()
        assert c.version > v0
        assert g.pending_ops == 0 and g.base_nvals == 6
        assert not g.compact()  # idempotent: nothing pending

    def test_seq_counts_batches_not_compactions(self):
        g = DynamicGraph(_chain(5))
        g.insert_edges([0], [2], [1.0])
        g.insert_edges([0], [4], [1.0])
        assert g.seq == 2
        g.compact()
        assert g.seq == 2
        # Empty batches (after normalization) don't bump seq either.
        g.apply(EdgeBatch.from_ops([]))
        assert g.seq == 2

    def test_matrix_property_compacts_on_demand(self):
        g = DynamicGraph(_chain(5))
        g.insert_edges([4], [0], [2.0])
        m = g.matrix
        assert g.pending_ops == 0
        assert m.container.get(4, 0) == 2.0
        m.container.validate()

    def test_snapshot_is_independent(self):
        g = DynamicGraph(_chain(5))
        g.insert_edges([0], [3], [1.0])
        snap = g.snapshot()
        assert g.pending_ops == 1  # snapshot did not compact the live graph
        assert snap.container.get(0, 3) == 1.0
        g.delete_edges([0], [3])
        assert snap.container.get(0, 3) == 1.0  # unaffected by later churn

    def test_stats_accounting(self):
        g = DynamicGraph(_chain(6))
        g.insert_edges([0, 1], [2, 3], [1.0, 1.0])
        g.delete_edges([0], [1])
        g.compact()
        s = g.stats.as_dict()
        assert s["batches"] == 2
        assert s["inserts"] == 2 and s["deletes"] == 1
        assert s["compactions"] == 1 and s["auto_compactions"] == 0

    def test_auto_compaction_policy(self):
        g = DynamicGraph(
            _chain(5), policy=CompactionPolicy(max_delta_fraction=0.0, min_delta_ops=2)
        )
        g.insert_edges([0], [2], [1.0])
        assert g.pending_ops == 1  # below the op floor
        g.insert_edges([0], [3], [1.0])
        assert g.pending_ops == 0  # floor crossed -> auto-compacted
        assert g.stats.auto_compactions == 1

    def test_never_policy_disables_auto(self):
        g = DynamicGraph(_chain(5), policy=CompactionPolicy(never=True))
        for j in range(1, 5):
            g.insert_edges([4], [j - 1], [1.0])
        assert g.pending_ops > 0
        assert g.stats.auto_compactions == 0


# ---------------------------------------------------------------------------
# Compaction across backends
# ---------------------------------------------------------------------------


class TestCompactionBackends:
    def test_compaction_matches_host_merge(self, backend):
        rng = np.random.default_rng(42)
        n = 20
        base = Matrix.from_dense(
            (rng.random((n, n)) < 0.15).astype(np.float64), FP64
        )
        g = DynamicGraph(base)
        g.insert_edges(
            rng.integers(0, n, 12), rng.integers(0, n, 12),
            rng.integers(1, 9, 12).astype(np.float64),
        )
        rows, cols = g.edges()
        if rows.size:
            g.delete_edges(rows[:3], cols[:3])
        expect = g.snapshot()
        assert g.compact()
        got = g.matrix.container
        got.validate()
        np.testing.assert_array_equal(got.indptr, expect.container.indptr)
        np.testing.assert_array_equal(got.indices, expect.container.indices)
        np.testing.assert_array_equal(got.values, expect.container.values)

    def test_device_compaction_is_charged(self):
        from repro.gpu.device import get_device

        be = gb.get_backend("cuda_sim")
        be.evict_all()
        with gb.use_backend(be):
            g = DynamicGraph(_chain(64))
            bfs_levels(g.matrix, 0)  # make the base resident
            prof = get_device().profiler
            k0, t0 = prof.launch_count, prof.transfer_time_us
            g.insert_edges([0, 1, 2], [5, 6, 7], [1.0, 1.0, 1.0])
            g.compact()
            assert prof.launch_count > k0, "merge kernel not charged"
            assert prof.transfer_time_us > t0, "delta H2D not charged"

    def test_multi_sim_compaction_charges_comm(self):
        be = gb.get_backend("multi_sim").configure(nparts=2, splitter="equal_rows")
        be.reset()
        with gb.use_backend(be):
            g = DynamicGraph(_chain(64))
            bfs_levels(g.matrix, 0)
            c0 = len(be.cluster.edges)
            g.insert_edges([0, 1], [9, 8], [1.0, 1.0])
            g.compact()
            assert len(be.cluster.edges) > c0, "all-to-all not charged"
